package serve

// This file is the impure half of the service: the bounded queue, the
// worker pool, the HTTP surface, and graceful shutdown. It is the
// package's only file that reads the wall clock or launches goroutines;
// both dwmlint exemptions (walltime, barego) are granted to this file
// alone via the analyzer allowlists, mirroring bench/runner.go. The
// worker pool preserves the determinism contract the same way parMap
// does: workers are interchangeable consumers of a channel, and every
// job's result is a pure function of its request (see job.go), so
// scheduling never influences a placement.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/placecache"
	"repro/internal/wal"
)

// Service instrumentation (see internal/obs), exposed over GET /metrics
// in the Prometheus text format. The histograms carry the same signals
// as the queue-wait and wall timers but with full distributions (and
// millisecond units, hence the distinct _ms names — a Timer already
// claims the bare names' _count series in the exposition).
var (
	obsAccepted    = obs.GetCounter("serve.jobs.accepted")
	obsRejected    = obs.GetCounter("serve.jobs.rejected")
	obsDone        = obs.GetCounter("serve.jobs.done")
	obsFailed      = obs.GetCounter("serve.jobs.failed")
	obsPartial     = obs.GetCounter("serve.jobs.partial")
	obsPanics      = obs.GetCounter("serve.panics_recovered")
	obsQueueDepth  = obs.GetGauge("serve.queue.depth")
	obsRunning     = obs.GetGauge("serve.jobs.running")
	obsQueueWait   = obs.GetTimer("serve.job.queue_wait")
	obsJobWall     = obs.GetTimer("serve.job.wall")
	obsQueueWaitMS = obs.GetHistogram("serve.job.queue_wait_ms",
		[]float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000})
	obsJobWallMS = obs.GetHistogram("serve.job.wall_ms",
		[]float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000})
	// Placement-cache outcomes at the service boundary: hits served
	// without running a worker, misses that went to the pool, and misses
	// that at least warm-started from a structural near-match. The
	// cache's own internals (evictions, bytes, persistence) live under
	// the placecache.* series.
	obsCacheHits       = obs.GetCounter("serve.cache.hits")
	obsCacheMisses     = obs.GetCounter("serve.cache.misses")
	obsCacheWarmstarts = obs.GetCounter("serve.cache.warmstarts")
	// Streaming-session surface: sessions created and closed, append
	// batches and the accesses they carried, and the append-latency
	// distribution (which includes any improvement rounds the batch
	// crossed — the any-time engine runs them inline with ingest).
	obsStreamsCreated = obs.GetCounter("serve.stream.created")
	obsStreamsClosed  = obs.GetCounter("serve.stream.closed")
	obsStreamsLive    = obs.GetGauge("serve.stream.live")
	obsStreamAppends  = obs.GetCounter("serve.stream.appends")
	obsStreamAccesses = obs.GetCounter("serve.stream.accesses")
	obsStreamAppendMS = obs.GetHistogram("serve.stream.append_ms",
		[]float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000})
	// Per-tenant attribution (DESIGN.md §16). The label sets are small
	// and bounded: tenant comes from PlaceRequest.Tenant through
	// tenantLabel (normalized, vec-capped with overflow collapsing into
	// "_other"), policy through policyLabel (the validated policy set),
	// and outcome is a closed enum of the handlePlace exits. The wall_ms
	// histogram records each job's trace ID as a bucket exemplar, so a
	// slow tenant's latency bucket links straight to a drainable trace in
	// /debug/events.
	obsTenantRequests = obs.GetCounterVec("serve.tenant.requests",
		[]string{"tenant", "policy", "outcome"})
	obsTenantWallMS = obs.GetHistogramVec("serve.tenant.wall_ms",
		[]string{"tenant"},
		[]float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000})
)

// Outcome label values for serve.tenant.requests — a closed set, one
// per handlePlace exit.
const (
	outcomeAccepted    = "accepted"
	outcomeCacheHit    = "cache_hit"
	outcomeDeduped     = "deduped"
	outcomeInvalid     = "invalid"
	outcomeRejected    = "rejected"
	outcomeUnavailable = "unavailable"
)

// tenantLabel normalizes a request's tenant for the labeled series:
// empty means "default", and anything longer than 64 bytes is truncated
// (the vec's cardinality cap bounds the series count either way; this
// just keeps individual label values scrape-friendly).
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	if len(tenant) > 64 {
		return tenant[:64]
	}
	return tenant
}

// policyLabel normalizes a request's policy for the labeled series:
// empty selects the default policy name, and an unknown (rejected)
// policy collapses into the overflow value so a hostile policy string
// can never mint a series.
func policyLabel(policy string) string {
	if policy == "" {
		return PolicyAnneal
	}
	if !validPolicy(policy) {
		return obs.OverflowLabel
	}
	return policy
}

// countRequest stamps one request outcome on the per-tenant series.
func countRequest(req PlaceRequest, outcome string) {
	obsTenantRequests.With(tenantLabel(req.Tenant), policyLabel(req.Policy), outcome).Inc()
}

// Options configures a Server. The zero value selects the defaults.
type Options struct {
	// QueueCap bounds the number of accepted-but-not-yet-running jobs;
	// a submission that does not fit is rejected with 429 and a
	// Retry-After hint. 0 selects 16.
	QueueCap int
	// Workers is the size of the job worker pool; 0 selects 2.
	Workers int
	// DefaultDeadline bounds a job's execution wall time when the
	// request does not set deadline_ms; 0 means no default limit.
	DefaultDeadline time.Duration
	// MaxDeadline caps the per-request deadline; 0 means no cap.
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 429 responses; 0 selects 1s.
	RetryAfter time.Duration
	// EventBuffer, when positive, enables the process-wide span tracer
	// with a ring of that many spans, drained over GET /debug/events.
	// Zero leaves tracing in whatever state the process already has
	// (disabled unless something else enabled it).
	EventBuffer int
	// Cache is the placement cache the service consults for anneal
	// requests (see cache.go). Nil selects a fresh in-memory cache with
	// the default bound; supply one to control sizing or persistence.
	Cache *placecache.Cache
	// DisableCache turns content-addressed serving off entirely: every
	// request runs on the worker pool, as before the cache existed.
	DisableCache bool
	// Journal, when non-nil, makes accepted work durable: job
	// acceptances, checkpoints, terminal results, and stream batches are
	// committed to this write-ahead log before the client sees a
	// success, and New replays the log to rebuild state after a crash
	// (DESIGN.md §15). The caller owns the log's lifecycle (cmd/dwmserved
	// opens it from -journal and closes it after shutdown). Nil keeps
	// the service purely in-memory, exactly as before.
	Journal *wal.Log
}

func (o Options) queueCap() int {
	if o.QueueCap > 0 {
		return o.QueueCap
	}
	return 16
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 2
}

func (o Options) retryAfterSeconds() int {
	ra := o.RetryAfter
	if ra <= 0 {
		ra = time.Second
	}
	secs := int((ra + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// deadlineFor resolves a request's effective execution deadline.
func (o Options) deadlineFor(req PlaceRequest) time.Duration {
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = o.DefaultDeadline
	}
	if o.MaxDeadline > 0 && (d <= 0 || d > o.MaxDeadline) {
		d = o.MaxDeadline
	}
	return d
}

// Server is the placement service: a bounded job queue, a fixed worker
// pool, and the HTTP handlers of cmd/dwmserved.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	httpSrv *http.Server
	cache   *placecache.Cache // nil when Options.DisableCache
	jl      *journal          // nil-safe wrapper around Options.Journal

	mu        sync.Mutex
	jobs      map[string]*job   //dwmlint:guard mu
	byKey     map[string]string //dwmlint:guard mu — ClientKey → job ID, first wins
	queue     chan *job         // channel ops self-synchronize; mu only guards replacing it
	accepting bool              //dwmlint:guard mu
	isReady   bool              //dwmlint:guard mu
	nextID    int64             //dwmlint:guard mu
	wg        sync.WaitGroup    // worker pool

	// Streaming sessions (see stream.go). Appends run inline in the
	// handler — bounded improvement rounds, no worker pool — so shutdown
	// only has to stop admitting new appends; in-flight ones finish under
	// the HTTP server's own drain.
	streams      map[string]*stream //dwmlint:guard mu
	nextStreamID int64              //dwmlint:guard mu
}

// New builds a Server, replays its journal (when Options.Journal is
// set), and starts the worker pool. Callers must eventually call
// Shutdown to drain the pool, even when Serve is never invoked (tests
// driving the handlers directly). The only error source is journal
// replay; a journal-less New cannot fail.
func New(opts Options) (*Server, error) {
	s := &Server{
		opts:      opts,
		mux:       http.NewServeMux(),
		jobs:      make(map[string]*job),
		byKey:     make(map[string]string),
		accepting: true,
		isReady:   true,
		streams:   make(map[string]*stream),
		jl:        &journal{log: opts.Journal},
	}
	if !opts.DisableCache {
		s.cache = opts.Cache
		if s.cache == nil {
			s.cache = placecache.NewMemory(0)
		}
	}
	// Recover journaled state before the queue channel exists: the
	// channel is sized to hold every unfinished recovered job on top of
	// the configured capacity, so requeueing can never block or deadlock
	// against a pool that is not running yet.
	var requeue []*job
	if opts.Journal != nil {
		var err error
		requeue, err = s.recover()
		if err != nil {
			return nil, err
		}
	}
	qcap := opts.queueCap()
	if len(requeue) > qcap {
		qcap = len(requeue)
	}
	s.queue = make(chan *job, qcap)
	for _, j := range requeue {
		// Depth accounting is symmetric with handlePlace: increment
		// strictly before the send, decrement at the dequeue in runJob, so
		// the gauge can never go transiently negative.
		obsQueueDepth.Add(1)
		s.queue <- j
		obsRequeuedJobs.Inc()
	}
	s.mux.HandleFunc("POST /v1/place", s.handlePlace)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	s.mux.HandleFunc("POST /v1/streams/{id}/append", s.handleStreamAppend)
	s.mux.HandleFunc("GET /v1/streams/{id}", s.handleStream)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.Default().Snapshot().WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if opts.EventBuffer > 0 {
		obs.EnableTracing(opts.EventBuffer)
	}
	s.mux.HandleFunc("GET /debug/events", handleEvents)
	// Standard pprof surface, reachable with `go tool pprof` against a
	// live service. Registered on the explicit paths (not a prefix
	// wildcard) so the mux's method-aware patterns above stay unambiguous.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.httpSrv = &http.Server{Handler: s.mux}
	for i := 0; i < opts.workers(); i++ {
		s.wg.Add(1)
		//dwmlint:ignore barego worker pool goroutines mirror parMap: interchangeable consumers of one channel, results are pure functions of the job request, and Shutdown closes the channel and waits on the WaitGroup
		go s.worker()
	}
	return s, nil
}

// recover rebuilds jobs and streams from the journal and returns the
// unfinished jobs to requeue, oldest first. It runs before the worker
// pool or HTTP surface exists; it still takes s.mu around the registry
// mutations to keep the lock discipline uniform (uncontended here).
//
// Terminal jobs come back exactly as journaled: their results were
// derived once and the stored bytes are served as-is. Unfinished jobs
// are re-run from the request — cold, with no cache plan — because a
// job's result is a pure function of its request; re-deriving is what
// makes the recovered placement byte-identical to an uninterrupted
// run. Journaled checkpoints only pre-seed the recovered job's
// best-so-far, so cancelling right after recovery still returns the
// pre-crash best.
func (s *Server) recover() ([]*job, error) {
	st, err := replayJournal(s.opts.Journal)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var requeue []*job
	for _, id := range st.jobOrder {
		rec := st.jobs[id]
		tr, terr := parseTrace(rec.req)
		j := &job{id: id, req: rec.req, tr: tr, tc: rec.traceContext()}
		switch {
		case terr != nil:
			// The trace was valid when accepted (acceptance journals after
			// validation), so this means the limits tightened across the
			// restart. Surface it as a failed job rather than wedging replay.
			j.status = statusFailed
			j.errMsg = "journal replay: " + terr.Error()
		case rec.terminal() && rec.errMsg != "":
			j.status = statusFailed
			j.errMsg = rec.errMsg
		case rec.terminal():
			j.status = statusDone
			j.result = rec.result
			j.cacheHit = rec.cacheHit
		default:
			j.status = statusQueued
			j.enqueued = now
			if rec.ckpt != nil {
				j.ckpt = layout.Placement(rec.ckpt)
				j.ckptCost = rec.ckptCost
			}
			requeue = append(requeue, j)
		}
		s.jobs[id] = j
		if k := rec.req.ClientKey; k != "" {
			if _, dup := s.byKey[k]; !dup {
				s.byKey[k] = id
			}
		}
		obsReplayedJobs.Inc()
	}
	for _, id := range st.streamOrder {
		rec := st.streams[id]
		if rec.deleted {
			// Tombstoned: the stream (and every journaled batch, including
			// any that raced the delete) stays gone.
			continue
		}
		sst, serr := newStream(id, rec.req)
		if serr != nil {
			obsRecordSkips.Inc()
			continue
		}
		for _, acc := range rec.appends {
			// Re-apply in journal order. A batch the session rejected live
			// was answered 400 and never entered the session; the session
			// re-rejects it identically here (validation is deterministic),
			// so skipping on error reproduces the live state.
			//dwmlint:ignore ctxflow replay runs before the HTTP surface exists; there is no request context to inherit
			_ = sst.sess.Append(context.Background(), acc)
		}
		s.streams[id] = sst
		obsStreamsLive.Add(1)
		obsReplayedStreams.Inc()
	}
	s.nextID = st.maxJobSeq
	s.nextStreamID = st.maxStreamSeq
	return requeue, nil
}

// Handler returns the service's HTTP handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown completes. A graceful
// shutdown returns nil.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the service: readiness flips to 503 immediately, new
// submissions are refused, queued and in-flight jobs run to completion
// (an accepted job is never dropped), and the HTTP listener closes once
// the pool is idle. ctx bounds the wait; on expiry the remaining jobs
// are cancelled — they unwind at their next cancellation check and
// finish with their best-so-far placement marked partial — and ctx's
// error is returned to signal the blown budget.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.isReady = false
	if s.accepting {
		s.accepting = false
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	//dwmlint:ignore barego shutdown helper: signals worker-pool drain completion so the wait can race the caller's deadline; no result state escapes it
	//dwmlint:ignore ctxflow wg.Wait cannot be interrupted by design — the caller's ctx bounds the wait via the select below, and accepted jobs must finish (accepted-work-is-never-dropped)
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var drainErr error
	select {
	case <-drained:
	case <-ctx.Done():
		drainErr = ctx.Err()
		// Budget blown: cut every remaining job short. Running jobs
		// unwind within one cancellation-check interval; still-queued
		// jobs yield their starting placement the moment a worker pops
		// them. Both finish as valid partials, so the drain below is
		// bounded even though the budget is spent.
		s.mu.Lock()
		for _, j := range s.jobs {
			j.requestCancel()
		}
		s.mu.Unlock()
		<-drained
	}
	if err := s.httpSrv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// handleReady is the readiness probe: 200 while accepting work, 503
// from the instant shutdown begins.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ready := s.isReady
	s.mu.Unlock()
	if !ready {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// eventsResponse is the body of GET /debug/events.
type eventsResponse struct {
	// Enabled reports whether the span tracer is on (Options.EventBuffer
	// or an explicit obs.EnableTracing).
	Enabled bool `json:"enabled"`
	// Dropped counts spans overwritten in the ring since the last drain
	// — the exact number of spans this response is missing, so a scraper
	// can tell a quiet server from an undersized ring.
	Dropped int64 `json:"dropped"`
	// Spans are the buffered span records, sorted by (trace, start
	// sequence): all spans of one trace are contiguous, ordered by when
	// they started (a span's ID is its start sequence), with untraced
	// spans first under the empty trace. Draining empties the ring —
	// each span is delivered to exactly one caller.
	Spans []obs.SpanRecord `json:"spans"`
}

// handleEvents drains the process-wide span ring as JSON. The response
// contract: it is a consuming read (two concurrent scrapers split the
// stream between them; each span is delivered exactly once), spans come
// back grouped by trace in start order, and Dropped is the exact count
// of spans overwritten since the previous drain.
func handleEvents(w http.ResponseWriter, _ *http.Request) {
	spans, dropped := obs.DrainSpans()
	if spans == nil {
		spans = []obs.SpanRecord{}
	}
	obs.SortSpans(spans)
	writeJSON(w, http.StatusOK, eventsResponse{
		Enabled: obs.TracingEnabled(),
		Dropped: dropped,
		Spans:   spans,
	})
}

// traceRequestContext returns the request's context extended with the
// caller's traceparent header, when one is present and well-formed —
// the extraction half of cross-process propagation. Handlers that mint
// jobs derive a fallback trace from the request identity instead (see
// handlePlace); for everything else an absent header simply means the
// spans stay untraced.
func traceRequestContext(r *http.Request) context.Context {
	tc, ok := obs.ParseTraceParent(r.Header.Get("traceparent"))
	if !ok {
		return r.Context()
	}
	return obs.ContextWithTrace(r.Context(), tc)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// handlePlace accepts a placement job: 202 with the job ID on success,
// 400 on invalid input, 429 with Retry-After when the queue is full,
// 503 once shutdown has begun.
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req PlaceRequest
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		countRequest(req, outcomeInvalid)
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid request body: " + err.Error()})
		return
	}
	tr, err := parseTrace(req)
	if err != nil {
		countRequest(req, outcomeInvalid)
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	if !validPolicy(req.Policy) {
		countRequest(req, outcomeInvalid)
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown policy %q", req.Policy)})
		return
	}
	// Adopt the caller's trace when the request carries a traceparent
	// header; otherwise derive it from the request identity, so every
	// job has a trace ID and an uninstrumented caller still gets the
	// same ID the serve client would have injected. rctx threads the
	// trace through the acceptance path (journal spans nest under it).
	tc, ok := obs.ParseTraceParent(r.Header.Get("traceparent"))
	if !ok {
		tc = RequestTrace(req)
	}
	rctx := obs.ContextWithTrace(r.Context(), tc)
	// Idempotent resubmission: a ClientKey that already owns a job —
	// whether from this process's lifetime or rebuilt from the journal —
	// returns that job instead of minting a duplicate. First wins; the
	// winning job's result (and trace ID) is what every resubmission sees.
	if req.ClientKey != "" {
		s.mu.Lock()
		id, dup := s.byKey[req.ClientKey]
		var prev *job
		if dup {
			prev = s.jobs[id]
		}
		s.mu.Unlock()
		if prev != nil {
			obsDeduped.Inc()
			countRequest(req, outcomeDeduped)
			writeJSON(w, http.StatusOK, prev.snapshot(time.Now()))
			return
		}
	}
	var resume []int
	if req.Resume != "" {
		prev, ok := s.lookup(req.Resume)
		if !ok {
			countRequest(req, outcomeInvalid)
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("resume: unknown job %q", req.Resume)})
			return
		}
		best, ok := prev.best()
		if !ok {
			countRequest(req, outcomeInvalid)
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("resume: job %q has no checkpoint yet", req.Resume)})
			return
		}
		if len(best) != tr.NumItems {
			countRequest(req, outcomeInvalid)
			writeJSON(w, http.StatusBadRequest, apiError{
				Error: fmt.Sprintf("resume: job %q covers %d items, trace has %d", req.Resume, len(best), tr.NumItems)})
			return
		}
		resume = best
	}

	// Consult the placement cache for anneal requests. A planning error
	// is not fatal — the job simply runs cold, exactly as with the cache
	// disabled (a malformed trace still fails inside execute).
	var plan *cachePlan
	if s.cache != nil && cacheable(req) {
		if p, err := planCache(s.cache, req, tr); err == nil {
			plan = p
		}
	}
	if plan != nil && plan.hit != nil {
		// Exact hit: mint a finished job without touching the worker
		// pool. The job is registered so GET /v1/jobs/{id} works as for
		// any other submission, and journaled (accept + done in one
		// breath) so it survives a restart like any other finished job.
		s.mu.Lock()
		if !s.accepting {
			s.mu.Unlock()
			countRequest(req, outcomeUnavailable)
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is shutting down"})
			return
		}
		s.nextID++
		j := &job{
			id:       fmt.Sprintf("job-%06d", s.nextID),
			req:      req,
			tr:       tr,
			tc:       tc,
			status:   statusDone,
			result:   plan.hit,
			cacheHit: true,
		}
		if err := s.jl.append(rctx, journalRecord{T: recJobAccept, ID: j.id, Req: &req, Trace: tc.TraceParent()}); err != nil {
			s.mu.Unlock()
			countRequest(req, outcomeUnavailable)
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "journal unavailable: " + err.Error()})
			return
		}
		if err := s.jl.append(rctx, journalRecord{T: recJobDone, ID: j.id, Result: plan.hit, CacheHit: true}); err != nil {
			s.mu.Unlock()
			countRequest(req, outcomeUnavailable)
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "journal unavailable: " + err.Error()})
			return
		}
		s.jobs[j.id] = j
		if req.ClientKey != "" {
			if _, dup := s.byKey[req.ClientKey]; !dup {
				s.byKey[req.ClientKey] = j.id
			}
		}
		s.mu.Unlock()
		obsAccepted.Inc()
		obsDone.Inc()
		obsCacheHits.Inc()
		countRequest(req, outcomeCacheHit)
		writeJSON(w, http.StatusAccepted, j.snapshot(time.Now()))
		return
	}
	// A miss is counted here; a warm start is NOT — a near-match found by
	// the planner only becomes a warm start if execute adopts it over the
	// policy's own start, and the accounting lives at that point of
	// application (see runJob's warmApplied closure).
	if plan != nil {
		obsCacheMisses.Inc()
	}

	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		countRequest(req, outcomeUnavailable)
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is shutting down"})
		return
	}
	// Admission is a length check, not a channel select: sends happen
	// only under s.mu and receives only shrink the queue, so the check
	// cannot race another producer, and the send below can never block.
	// (The channel's capacity may exceed QueueCap after a replay that
	// recovered more jobs than the cap; admission still gates on the
	// configured cap.)
	if len(s.queue) >= s.opts.queueCap() {
		s.mu.Unlock()
		obsRejected.Inc()
		countRequest(req, outcomeRejected)
		// Retry-After carries deterministic jitter derived from the
		// request's identity hash: a thundering herd of distinct retriers
		// spreads out, while any given request always hears the same
		// hint (pinned by TestRetryAfterJitterDeterministic).
		base := s.opts.retryAfterSeconds()
		retry := base + int(requestDigest(req)%uint64(base+1))
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeJSON(w, http.StatusTooManyRequests, apiError{
			Error: fmt.Sprintf("queue full (%d jobs); retry later", s.opts.queueCap())})
		return
	}
	s.nextID++
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.nextID),
		req:      req,
		tr:       tr,
		tc:       tc,
		resume:   resume,
		plan:     plan,
		status:   statusQueued,
		enqueued: time.Now(),
	}
	// Write-ahead acceptance: the job is durable before the 202 leaves
	// the server. Journaling under s.mu keeps journal order consistent
	// with ID order, so replay rebuilds the same sequence. If the
	// journal is unavailable the job is not accepted — durability was
	// the promise the 202 would have made. (The minted ID is skipped,
	// like the pre-journal queue-full path.)
	if err := s.jl.append(rctx, journalRecord{T: recJobAccept, ID: j.id, Req: &req, Trace: tc.TraceParent()}); err != nil {
		s.mu.Unlock()
		countRequest(req, outcomeUnavailable)
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "journal unavailable: " + err.Error()})
		return
	}
	// Queue-depth accounting is symmetric by construction: the gauge is
	// incremented under s.mu strictly before the send, and decremented by
	// the worker at the dequeue — so a worker that pops the job the
	// instant it lands can never observe (or produce) a negative depth.
	obsQueueDepth.Add(1)
	s.queue <- j
	s.jobs[j.id] = j
	if req.ClientKey != "" {
		if _, dup := s.byKey[req.ClientKey]; !dup {
			s.byKey[req.ClientKey] = j.id
		}
	}
	s.mu.Unlock()
	obsAccepted.Inc()
	countRequest(req, outcomeAccepted)
	writeJSON(w, http.StatusAccepted, JobStatus{
		ID:      j.id,
		Status:  statusQueued,
		Trace:   TraceInfo{Name: tr.Name, Accesses: tr.Len(), Items: tr.NumItems},
		TraceID: tc.TraceID,
	})
}

// lookup finds a job by ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// handleJob reports a job's status and, when finished, its result.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot(time.Now()))
}

// handleCancel cancels a job. A running job unwinds at its next
// cancellation check and completes with its best-so-far placement
// marked partial; a queued job yields its starting placement the moment
// a worker picks it up. Either way the accepted job still produces a
// valid result.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusAccepted, j.snapshot(time.Now()))
}

// handleStreamCreate opens a streaming placement session: 201 with the
// initial status on success, 400 on an invalid item count, 503 once
// shutdown has begun.
func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid request body: " + err.Error()})
		return
	}
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is shutting down"})
		return
	}
	s.nextStreamID++
	id := fmt.Sprintf("stream-%06d", s.nextStreamID)
	st, err := newStream(id, req)
	if err != nil {
		s.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	// Journal the creation before the stream becomes visible: a 201 is a
	// durability promise, same as a job's 202.
	if err := s.jl.append(traceRequestContext(r), journalRecord{T: recStreamCreate, ID: id, Stream: &req}); err != nil {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "journal unavailable: " + err.Error()})
		return
	}
	s.streams[id] = st
	s.mu.Unlock()
	obsStreamsCreated.Inc()
	obsStreamsLive.Add(1)
	writeJSON(w, http.StatusCreated, st.status())
}

// lookupStream finds a stream by ID.
func (s *Server) lookupStream(id string) (*stream, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[id]
	return st, ok
}

// handleStreamAppend feeds accesses into a session and returns the
// resulting status: 200 on success, 400 on an out-of-range access, 404
// for an unknown stream, 503 once shutdown has begun. The append — and
// any improvement rounds whose boundaries it crosses — runs inline, so a
// successful response already reflects the appended accesses.
func (s *Server) handleStreamAppend(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such stream"})
		return
	}
	s.mu.Lock()
	accepting := s.accepting
	s.mu.Unlock()
	if !accepting {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is shutting down"})
		return
	}
	var req StreamAppendRequest
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid request body: " + err.Error()})
		return
	}
	start := time.Now()
	sctx, span := obs.StartSpan(traceRequestContext(r), "serve.stream.append")
	defer span.End()
	span.SetAttr("stream", st.id).SetAttr("accesses", len(req.Accesses))
	// Journal-then-apply, both under the stream's own lock: the journal's
	// record order is exactly the session's apply order, which is what
	// lets replay rebuild the session byte-identically. A journal failure
	// is a clean 503 — nothing was applied, the client can retry. A batch
	// the session rejects was journaled but is harmless: replay re-rejects
	// it identically (session validation is deterministic).
	st.mu.Lock()
	if err := s.jl.append(sctx, journalRecord{T: recStreamAppend, ID: st.id, Accesses: req.Accesses}); err != nil {
		st.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "journal unavailable: " + err.Error()})
		return
	}
	// The session runs under a background context: an append is bounded
	// work (at most a handful of fixed-budget rounds), and once admitted
	// it completes even if the client goes away — the same accepted-work-
	// is-never-dropped stance the job queue takes, and a prerequisite for
	// the determinism contract (a half-applied append is not replayable).
	// Only the cancellation chain is severed: the trace context rides
	// along so the session's improvement-round spans stay in the caller's
	// trace.
	//dwmlint:ignore ctxflow deliberate severing: an admitted append must complete even if the client disconnects, or a half-applied append would make the stream unreplayable
	actx := context.Background()
	if tc, ok := obs.TraceFromContext(sctx); ok {
		actx = obs.ContextWithTrace(actx, tc)
	}
	err := st.sess.Append(actx, req.Accesses)
	st.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	obsStreamAppends.Inc()
	obsStreamAccesses.Add(int64(len(req.Accesses)))
	obsStreamAppendMS.Observe(time.Since(start).Milliseconds())
	writeJSON(w, http.StatusOK, st.status())
}

// handleStream reports a stream's current placement, cost, and counters.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such stream"})
		return
	}
	writeJSON(w, http.StatusOK, st.status())
}

// handleStreamDelete closes a stream and returns its final status. The
// session holds no external resources, so deletion is just registry
// removal; in-flight appends on the same stream finish normally against
// the session they already hold.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	st, ok := s.streams[id]
	if ok {
		// Tombstone before removal: once the delete record is durable, no
		// replay can resurrect the stream — not even from append records a
		// concurrent handler journals after this point (replay drops
		// everything past the tombstone). If the tombstone cannot be
		// written the stream stays registered, so journal and registry
		// never disagree.
		if err := s.jl.append(traceRequestContext(r), journalRecord{T: recStreamDelete, ID: id}); err != nil {
			s.mu.Unlock()
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "journal unavailable: " + err.Error()})
			return
		}
		delete(s.streams, id)
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such stream"})
		return
	}
	obsStreamsClosed.Inc()
	obsStreamsLive.Add(-1)
	writeJSON(w, http.StatusOK, st.status())
}

// worker consumes jobs until the queue closes at shutdown, draining
// whatever was accepted.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job with panic isolation: a panic inside the
// placement pipeline fails that job (with its stack) and the worker
// survives to serve the next one — the bench.RunContext recovery
// pattern.
func (s *Server) runJob(j *job) {
	obsQueueDepth.Add(-1)
	start := time.Now()

	// The job runs detached from the submitting request's lifetime (the
	// 202 already went out), but inside its trace: the job's TraceContext
	// re-enters the context here, so the run span — and through it the
	// anneal chain spans and journal appends — lands in the caller's
	// trace, journal replay included (j.tc survives recovery).
	base := obs.ContextWithTrace(context.Background(), j.tc)
	var cancels []context.CancelFunc
	if d := s.opts.deadlineFor(j.req); d > 0 {
		ctx, cancel := context.WithTimeout(base, d)
		base, cancels = ctx, append(cancels, cancel)
	}
	ctx, cancel := context.WithCancel(base)
	cancels = append(cancels, cancel)
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	obsQueueWait.Observe(start.Sub(j.enqueued))
	obsQueueWaitMS.Observe(start.Sub(j.enqueued).Milliseconds())
	ctx, span := obs.StartSpan(ctx, "serve.job.run")
	defer span.End()
	span.SetAttr("id", j.id).SetAttr("trace", j.tr.Name)
	j.mu.Lock()
	j.status = statusRunning
	j.cancel = cancel
	if j.canceled {
		cancel()
	}
	j.mu.Unlock()
	obsRunning.Add(1)
	defer obsRunning.Add(-1)

	finish := func(res *Result, errMsg string) {
		elapsed := time.Since(start)
		obsJobWall.Observe(elapsed)
		obsJobWallMS.Observe(elapsed.Milliseconds())
		// The per-tenant latency series records the job's trace ID as a
		// bucket exemplar: the /metrics scrape links a slow bucket to a
		// concrete drainable trace.
		obsTenantWallMS.With(tenantLabel(j.req.Tenant)).ObserveTrace(elapsed.Milliseconds(), j.tc.TraceID)
		span.SetAttr("failed", errMsg != "")
		j.mu.Lock()
		j.elapsedMS = elapsed.Milliseconds()
		j.cancel = nil
		if errMsg != "" {
			j.status = statusFailed
			j.errMsg = errMsg
			obsFailed.Inc()
		} else {
			j.status = statusDone
			j.result = res
			obsDone.Inc()
			if res.Partial {
				obsPartial.Inc()
			}
		}
		j.mu.Unlock()
		// Journal the terminal state. Failure here degrades rather than
		// fails the job — the work is already done and acknowledged via
		// GET; a crash before the record lands just means replay re-derives
		// the same bytes the hard way.
		if errMsg != "" {
			_ = s.jl.append(ctx, journalRecord{T: recJobFailed, ID: j.id, Err: errMsg})
		} else {
			_ = s.jl.append(ctx, journalRecord{T: recJobDone, ID: j.id, Result: res})
		}
	}

	defer func() {
		if r := recover(); r != nil {
			obsPanics.Inc()
			finish(nil, fmt.Sprintf("panic: %v\n%s", r, debug.Stack()))
		}
	}()

	// The checkpoint closure stamps the wall clock here — job.go is
	// clock-free by design (see the walltime analyzer allowlist). Each
	// improvement is journaled so a recovered job starts with the
	// pre-crash best-so-far already in hand; the wal serializes the
	// concurrent chains' appends.
	checkpoint := func(p layout.Placement, c int64) {
		if j.recordCheckpoint(p, c, time.Now()) {
			_ = s.jl.append(ctx, journalRecord{T: recJobCheckpoint, ID: j.id, Placement: p, Cost: c})
		}
	}
	var prebuiltGraph *graph.Graph
	var warm layout.Placement
	if j.plan != nil {
		prebuiltGraph = j.plan.g
		warm = j.plan.warm
	}
	// Warm-start accounting fires only when execute actually adopts the
	// cached near-match (it must beat the policy's own start): both the
	// service counter and the cache's own warm-hit stat measure
	// applications, not lookups.
	warmApplied := func() {
		obsCacheWarmstarts.Inc()
		if s.cache != nil {
			s.cache.NoteWarmApplied()
		}
	}
	res, err := execute(ctx, j.req, j.tr, prebuiltGraph, j.resume, warm, warmApplied, checkpoint, j.recordProgress)
	if err != nil {
		finish(nil, err.Error())
		return
	}
	finish(res, "")
	// Memoize the finished result: full runs only (a partial is not the
	// key's answer), and only for planned (cacheable) jobs. Put is
	// first-wins, so concurrent duplicates cannot flap the stored bytes.
	if j.plan != nil && !res.Partial && s.cache != nil {
		s.cache.Put(j.plan.key, storeEntry(j.plan.canon, res))
	}
}
