package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"reflect"
	"testing"
)

// createStream posts to /v1/streams and returns (status code, status).
func createStream(t *testing.T, base string, req StreamRequest) (int, StreamStatus) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/streams", req)
	var st StreamStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("bad 201 body %q: %v", body, err)
		}
		if st.ID == "" {
			t.Fatalf("201 with empty stream id: %s", body)
		}
	}
	return resp.StatusCode, st
}

// appendStream posts accesses to a stream and returns (status code, status).
func appendStream(t *testing.T, base, id string, accesses []int) (int, StreamStatus) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/streams/"+id+"/append", StreamAppendRequest{Accesses: accesses})
	var st StreamStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("bad 200 body %q: %v", body, err)
		}
	}
	return resp.StatusCode, st
}

func getStream(t *testing.T, base, id string) StreamStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/streams/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream %s: status %d", id, resp.StatusCode)
	}
	var st StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func streamAccessesFor(seed int64, items, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	acc := make([]int, n)
	for i := range acc {
		if rng.Intn(4) > 0 {
			acc[i] = rng.Intn(1 + items/4)
		} else {
			acc[i] = rng.Intn(items)
		}
	}
	return acc
}

// TestStreamChunkInvariance is the HTTP-level determinism contract: the
// stream's placement after N appended accesses is byte-identical whether
// they arrived in one append or in ragged chunks, and matches across two
// servers (no process-local state leaks in).
func TestStreamChunkInvariance(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	spec := StreamRequest{Name: "smoke", Items: 32, Seed: 9, RoundEvery: 200, RoundIterations: 1200}
	accesses := streamAccessesFor(3, spec.Items, 1500)

	code, one := createStream(t, base, spec)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code, _ := appendStream(t, base, one.ID, accesses); code != http.StatusOK {
		t.Fatalf("one-shot append: status %d", code)
	}
	oneFinal := getStream(t, base, one.ID)

	_, chunked := createStream(t, base, spec)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < len(accesses); {
		k := 1 + rng.Intn(137)
		if i+k > len(accesses) {
			k = len(accesses) - i
		}
		if code, _ := appendStream(t, base, chunked.ID, accesses[i:i+k]); code != http.StatusOK {
			t.Fatalf("chunked append at %d: status %d", i, code)
		}
		i += k
	}
	chunkedFinal := getStream(t, base, chunked.ID)

	// Identity fields differ; everything derived from the accesses must not.
	oneFinal.ID, chunkedFinal.ID = "", ""
	if !reflect.DeepEqual(oneFinal, chunkedFinal) {
		t.Fatalf("chunked stream diverged from one-shot:\n got %+v\nwant %+v", chunkedFinal, oneFinal)
	}
	if oneFinal.Rounds == 0 {
		t.Fatal("stream ran no improvement rounds")
	}
	if oneFinal.Accesses != int64(len(accesses)) {
		t.Fatalf("accesses = %d, want %d", oneFinal.Accesses, len(accesses))
	}
}

// TestStreamValidation covers the 4xx surface of the stream endpoints.
func TestStreamValidation(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	if code, _ := createStream(t, base, StreamRequest{Items: 0}); code != http.StatusBadRequest {
		t.Fatalf("items=0: status %d, want 400", code)
	}
	if code, _ := createStream(t, base, StreamRequest{Items: maxStreamItems + 1}); code != http.StatusBadRequest {
		t.Fatalf("oversized items: status %d, want 400", code)
	}
	code, st := createStream(t, base, StreamRequest{Items: 8, Seed: 1})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code, _ := appendStream(t, base, st.ID, []int{3, 8}); code != http.StatusBadRequest {
		t.Fatalf("out-of-range access: status %d, want 400", code)
	}
	if got := getStream(t, base, st.ID).Accesses; got != 0 {
		t.Fatalf("rejected append ingested %d accesses", got)
	}
	if code, _ := appendStream(t, base, "stream-999999", []int{1}); code != http.StatusNotFound {
		t.Fatalf("append to unknown stream: status %d, want 404", code)
	}
	resp, err := http.Get(base + "/v1/streams/stream-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown stream: status %d, want 404", resp.StatusCode)
	}
}

// TestStreamDelete pins close semantics: DELETE returns the final status
// and the stream is gone afterwards.
func TestStreamDelete(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	_, st := createStream(t, base, StreamRequest{Items: 8, Seed: 2})
	if code, _ := appendStream(t, base, st.ID, []int{1, 5, 1, 3}); code != http.StatusOK {
		t.Fatalf("append: status %d", code)
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/streams/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var final StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || final.Accesses != 4 {
		t.Fatalf("delete: status %d, final %+v", resp.StatusCode, final)
	}
	resp2, err := http.Get(base + "/v1/streams/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete: status %d, want 404", resp2.StatusCode)
	}
}

// TestPlaceOversizedTrace pins the oversized-trace bugfix at the HTTP
// boundary: a trace whose header declares an item space at the CSR limit
// must be rejected with 400 at submission, not crash a worker into a
// panic-isolated failed job.
func TestPlaceOversizedTrace(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	resp, body := postJSON(t, base+"/v1/place", PlaceRequest{
		Trace: "dwmtrace 1\nname huge\nitems 2147483648\nR 0\nR 1\n",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized trace: status %d (%s), want 400", resp.StatusCode, body)
	}
}
