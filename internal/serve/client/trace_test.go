package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// headerServer records the traceparent header of every request.
type headerServer struct {
	mu      sync.Mutex
	headers []string
	status  serve.JobStatus
}

func (s *headerServer) handler(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.headers = append(s.headers, r.Header.Get("traceparent"))
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.status)
}

func (s *headerServer) all() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.headers...)
}

// Submit must inject the request's canonical trace — the same
// derivation the server falls back to — so client and server agree on
// the trace ID without any coordination.
func TestSubmitInjectsCanonicalTraceparent(t *testing.T) {
	hs := &headerServer{status: serve.JobStatus{ID: "job-000001", Status: "done"}}
	srv := httptest.NewServer(http.HandlerFunc(hs.handler))
	defer srv.Close()
	c := New(Options{BaseURL: srv.URL})

	req := serve.PlaceRequest{Trace: "t", Seed: 7}
	if _, err := c.Submit(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	headers := hs.all()
	if len(headers) != 1 {
		t.Fatalf("got %d requests, want 1", len(headers))
	}
	// Submit stamps ClientKey before deriving, so compute the expected
	// trace from the stamped request.
	stamped := req
	stamped.ClientKey = serve.RequestKey(req)
	if want := serve.RequestTrace(stamped).TraceParent(); headers[0] != want {
		t.Fatalf("traceparent = %q, want %q", headers[0], want)
	}
	tc, ok := obs.ParseTraceParent(headers[0])
	if !ok || !tc.Valid() {
		t.Fatalf("injected header %q does not parse", headers[0])
	}
}

// A caller-provided TraceContext on the context wins over the canonical
// derivation, and retries re-send the same header.
func TestCallerTraceWinsAndSurvivesRetries(t *testing.T) {
	ss := &scriptServer{
		script: []func(http.ResponseWriter){
			status(http.StatusInternalServerError, `{"error":"blip"}`),
			status(http.StatusTooManyRequests, `{"error":"full"}`),
		},
		final: serve.JobStatus{ID: "job-000002", Status: "done"},
	}
	headers := struct {
		mu  sync.Mutex
		all []string
	}{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers.mu.Lock()
		headers.all = append(headers.all, r.Header.Get("traceparent"))
		headers.mu.Unlock()
		ss.handler(w, r)
	}))
	defer srv.Close()
	fs := &fakeSleep{}
	c := New(Options{BaseURL: srv.URL, Sleep: fs.sleep})

	tc := obs.DeriveTraceContext("caller-chosen")
	ctx := obs.ContextWithTrace(context.Background(), tc)
	if _, err := c.Submit(ctx, serve.PlaceRequest{Trace: "t", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	headers.mu.Lock()
	defer headers.mu.Unlock()
	if len(headers.all) != 3 {
		t.Fatalf("got %d attempts, want 3", len(headers.all))
	}
	want := tc.TraceParent()
	for i, h := range headers.all {
		if h != want {
			t.Fatalf("attempt %d traceparent = %q, want %q", i+1, h, want)
		}
	}
}

// OnRetry observes every absorbed failure with the classification the
// SLO report buckets by: the HTTP status for 429/5xx, zero for
// transport errors.
func TestOnRetryObservesAbsorbedFailures(t *testing.T) {
	ss := &scriptServer{
		script: []func(http.ResponseWriter){
			status(http.StatusTooManyRequests, `{"error":"full"}`),
			status(http.StatusBadGateway, `{"error":"upstream"}`),
		},
		final: serve.JobStatus{ID: "job-000003", Status: "done"},
	}
	var mu sync.Mutex
	var infos []RetryInfo
	c, _ := newTestClient(t, ss, Options{
		OnRetry: func(ri RetryInfo) {
			mu.Lock()
			infos = append(infos, ri)
			mu.Unlock()
		},
	})
	if _, err := c.Submit(context.Background(), serve.PlaceRequest{Trace: "t", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(infos) != 2 {
		t.Fatalf("got %d retry callbacks, want 2", len(infos))
	}
	if infos[0].Status != http.StatusTooManyRequests || infos[1].Status != http.StatusBadGateway {
		t.Fatalf("statuses = %d, %d", infos[0].Status, infos[1].Status)
	}
	for i, ri := range infos {
		if ri.Attempt != i+1 {
			t.Errorf("callback %d has attempt %d", i, ri.Attempt)
		}
		if ri.Err == nil || ri.Wait < 0 {
			t.Errorf("callback %d incomplete: %+v", i, ri)
		}
	}
}

// A permanent 4xx never reaches OnRetry — there is nothing to wait out.
func TestOnRetryNotCalledOnPermanentError(t *testing.T) {
	ss := &scriptServer{
		script: []func(http.ResponseWriter){
			status(http.StatusBadRequest, `{"error":"bad"}`),
		},
	}
	called := false
	c, _ := newTestClient(t, ss, Options{OnRetry: func(RetryInfo) { called = true }})
	if _, err := c.Submit(context.Background(), serve.PlaceRequest{Trace: "t"}); err == nil {
		t.Fatal("400 did not surface as an error")
	}
	if called {
		t.Fatal("OnRetry fired for a permanent 4xx")
	}
}
