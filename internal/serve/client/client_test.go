package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// fakeSleep records every requested delay and returns instantly.
type fakeSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.delays = append(f.delays, d)
	f.mu.Unlock()
	return ctx.Err()
}

func (f *fakeSleep) all() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.delays...)
}

// scriptServer answers each request from a scripted list of responses;
// past the script it always succeeds with the given job status.
type scriptServer struct {
	mu     sync.Mutex
	script []func(w http.ResponseWriter)
	calls  int
	final  serve.JobStatus
}

func (s *scriptServer) handler(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	i := s.calls
	s.calls++
	s.mu.Unlock()
	if i < len(s.script) {
		s.script[i](w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.final)
}

func (s *scriptServer) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func status(code int, body string) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.WriteHeader(code)
		fmt.Fprint(w, body)
	}
}

func newTestClient(t *testing.T, s *scriptServer, opts Options) (*Client, *fakeSleep) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(s.handler))
	t.Cleanup(srv.Close)
	fs := &fakeSleep{}
	opts.BaseURL = srv.URL
	opts.Sleep = fs.sleep
	return New(opts), fs
}

func TestSubmitRetriesOn5xx(t *testing.T) {
	s := &scriptServer{
		script: []func(http.ResponseWriter){
			status(http.StatusInternalServerError, `{"error":"blip"}`),
			status(http.StatusBadGateway, `{"error":"blip"}`),
		},
		final: serve.JobStatus{ID: "job-000001", Status: "queued"},
	}
	c, fs := newTestClient(t, s, Options{})
	js, err := c.Submit(context.Background(), serve.PlaceRequest{Trace: "t", Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if js.ID != "job-000001" {
		t.Fatalf("job = %q", js.ID)
	}
	if s.count() != 3 {
		t.Fatalf("server saw %d calls, want 3", s.count())
	}
	if len(fs.all()) != 2 {
		t.Fatalf("slept %d times, want 2", len(fs.all()))
	}
}

func TestSubmitHonorsRetryAfter(t *testing.T) {
	s := &scriptServer{
		script: []func(http.ResponseWriter){
			func(w http.ResponseWriter) {
				w.Header().Set("Retry-After", "3")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":"queue full"}`)
			},
		},
		final: serve.JobStatus{ID: "job-000002", Status: "queued"},
	}
	c, fs := newTestClient(t, s, Options{})
	if _, err := c.Submit(context.Background(), serve.PlaceRequest{Trace: "t"}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	delays := fs.all()
	if len(delays) != 1 || delays[0] != 3*time.Second {
		t.Fatalf("delays = %v, want exactly the server's 3s hint", delays)
	}
}

func TestPermanent4xxNotRetried(t *testing.T) {
	s := &scriptServer{
		script: []func(http.ResponseWriter){
			status(http.StatusBadRequest, `{"error":"missing trace"}`),
		},
	}
	c, fs := newTestClient(t, s, Options{})
	_, err := c.Submit(context.Background(), serve.PlaceRequest{})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if !strings.Contains(apiErr.Message, "missing trace") {
		t.Fatalf("message = %q", apiErr.Message)
	}
	if s.count() != 1 || len(fs.all()) != 0 {
		t.Fatalf("400 was retried: %d calls, %d sleeps", s.count(), len(fs.all()))
	}
}

func TestAttemptsExhausted(t *testing.T) {
	down := func(w http.ResponseWriter) { w.WriteHeader(http.StatusServiceUnavailable) }
	s := &scriptServer{script: []func(http.ResponseWriter){down, down, down, down, down, down}}
	c, _ := newTestClient(t, s, Options{MaxAttempts: 3})
	_, err := c.Submit(context.Background(), serve.PlaceRequest{Trace: "t"})
	if err == nil || !strings.Contains(err.Error(), "3 attempts exhausted") {
		t.Fatalf("err = %v", err)
	}
	if s.count() != 3 {
		t.Fatalf("server saw %d calls, want 3", s.count())
	}
}

func TestConnectionErrorRetried(t *testing.T) {
	// A server that is down for the first attempts: point the client at a
	// listener that was closed, then switch to a live one. Simplest
	// in-process stand-in: an httptest server whose handler hijacks and
	// slams the connection.
	drops := 2
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		drop := drops > 0
		if drop {
			drops--
		}
		mu.Unlock()
		if drop {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijack support")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // connection reset mid-request
			return
		}
		json.NewEncoder(w).Encode(serve.JobStatus{ID: "job-000003", Status: "queued"})
	}))
	t.Cleanup(srv.Close)
	fs := &fakeSleep{}
	c := New(Options{BaseURL: srv.URL, Sleep: fs.sleep})
	js, err := c.Submit(context.Background(), serve.PlaceRequest{Trace: "t"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if js.ID != "job-000003" {
		t.Fatalf("job = %q", js.ID)
	}
	if len(fs.all()) != 2 {
		t.Fatalf("slept %d times, want 2", len(fs.all()))
	}
}

// TestBackoffScheduleDeterministic: the jittered backoff is a pure
// function of (key, attempt) — same request, same schedule, every run —
// and stays within [ceil/2, ceil] of the exponential envelope.
func TestBackoffScheduleDeterministic(t *testing.T) {
	c := New(Options{BaseURL: "http://unused", BaseBackoff: 100 * time.Millisecond, MaxBackoff: 2 * time.Second})
	var first []time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		d := c.backoffFor("key-a/submit", attempt)
		first = append(first, d)
		ceil := 100 * time.Millisecond << (attempt - 1)
		if ceil > 2*time.Second {
			ceil = 2 * time.Second
		}
		if d < ceil/2 || d > ceil {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, ceil/2, ceil)
		}
	}
	for attempt := 1; attempt <= 6; attempt++ {
		if d := c.backoffFor("key-a/submit", attempt); d != first[attempt-1] {
			t.Fatalf("attempt %d: schedule not deterministic: %v vs %v", attempt, d, first[attempt-1])
		}
	}
	diff := false
	for attempt := 1; attempt <= 6; attempt++ {
		if c.backoffFor("key-b/submit", attempt) != first[attempt-1] {
			diff = true
		}
	}
	if !diff {
		t.Error("distinct keys produced identical schedules; jitter is vacuous")
	}
}

// TestSubmitStampsIdempotencyKey: Submit fills ClientKey with the
// request's deterministic identity unless disabled or caller-supplied.
func TestSubmitStampsIdempotencyKey(t *testing.T) {
	var got serve.PlaceRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = serve.PlaceRequest{} // omitempty fields would otherwise go stale
		json.NewDecoder(r.Body).Decode(&got)
		json.NewEncoder(w).Encode(serve.JobStatus{ID: "job-000001", Status: "queued"})
	}))
	t.Cleanup(srv.Close)

	req := serve.PlaceRequest{Trace: "t", Seed: 42}
	c := New(Options{BaseURL: srv.URL})
	if _, err := c.Submit(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got.ClientKey != serve.RequestKey(req) {
		t.Fatalf("ClientKey = %q, want RequestKey %q", got.ClientKey, serve.RequestKey(req))
	}

	req.ClientKey = "caller-chosen"
	if _, err := c.Submit(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got.ClientKey != "caller-chosen" {
		t.Fatalf("caller-supplied key overwritten: %q", got.ClientKey)
	}

	c2 := New(Options{BaseURL: srv.URL, DisableIdempotency: true})
	if _, err := c2.Submit(context.Background(), serve.PlaceRequest{Trace: "t", Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if got.ClientKey != "" {
		t.Fatalf("DisableIdempotency still stamped %q", got.ClientKey)
	}
}

// TestRunAgainstRealServer drives Submit+Wait end to end against an
// in-process dwmserved surface, with the idempotency key exercised by a
// duplicate Run converging on the same job.
func TestRunAgainstRealServer(t *testing.T) {
	s, err := serve.New(serve.Options{Workers: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		srv.Close()
	})

	var trace strings.Builder
	trace.WriteString("dwmtrace 1\nname client-e2e\nitems 8\n")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&trace, "R %d\n", (i*3)%8)
	}
	req := serve.PlaceRequest{Trace: trace.String(), Seed: 1, Iterations: 2000}

	c := New(Options{BaseURL: srv.URL, PollInterval: time.Millisecond})
	first, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if first.Status != "done" {
		t.Fatalf("status %s: %s", first.Status, first.Error)
	}
	second, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if second.ID != first.ID {
		t.Fatalf("idempotent rerun minted a new job: %s vs %s", second.ID, first.ID)
	}
	if fmt.Sprint(second.Result.Placement) != fmt.Sprint(first.Result.Placement) {
		t.Fatal("rerun returned different placement bytes")
	}
}
