// Package client is the resilient Go client for the dwmserved API: it
// submits placement jobs, polls them to completion, and absorbs the
// transient failures a real deployment throws at callers — queue-full
// 429s, 5xx blips, connection resets, and server restarts.
//
// The retry discipline:
//
//   - 429 responses are retried after exactly the server's Retry-After
//     hint (the server already jitters it deterministically per
//     request, so the client adds nothing).
//   - 5xx responses and transport errors (connection reset, refused —
//     the restart window) are retried with exponential backoff and
//     deterministic jitter derived from (request identity, attempt):
//     the same request retries on the same schedule every run, keeping
//     client behavior reproducible, while distinct requests decorrelate.
//   - 4xx responses other than 429 are permanent: the request is wrong,
//     and retrying cannot fix it.
//
// Resubmission is safe because Submit stamps the request's ClientKey
// with its deterministic identity (serve.RequestKey) unless the caller
// already chose a key: a retry that reaches a server which accepted the
// previous attempt — including one that recovered the acceptance from
// its journal after a crash — dedupes onto the original job instead of
// running twice.
//
// The package is clock-free (no time.Now): waiting is delegated to a
// sleep hook, which tests replace to run instantly and to record the
// exact schedule.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Options configures a Client. The zero value of every field selects a
// default; only BaseURL is required.
type Options struct {
	// BaseURL is the server's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil selects http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts bounds tries per call (first try included); 0 selects 5.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay; 0 selects 200ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 selects 5s.
	MaxBackoff time.Duration
	// PollInterval is Wait's polling cadence; 0 selects 50ms.
	PollInterval time.Duration
	// DisableIdempotency stops Submit from stamping ClientKey, restoring
	// fire-and-duplicate semantics for callers that want N runs of the
	// same request to be N jobs.
	DisableIdempotency bool
	// Sleep replaces the waiting primitive (tests); nil selects a
	// context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes every retry the client is about to
	// sleep through — the 429s and 5xx blips the retry loop otherwise
	// absorbs silently. Load generators (cmd/dwmload) use it to count
	// backpressure against an SLO budget. The hook must not block; it
	// runs inline in the retry loop.
	OnRetry func(RetryInfo)
}

// RetryInfo describes one retry the client is about to wait out.
type RetryInfo struct {
	// Op is the logical call ("submit", "get", "cancel", "stream.append",
	// ...), Attempt the 1-based try that just failed.
	Op      string
	Attempt int
	// Status is the HTTP status that triggered the retry, 0 for
	// transport errors (Err then carries the cause).
	Status int
	Err    error
	// Wait is how long the client will sleep before the next try.
	Wait time.Duration
}

func (o Options) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 5
}

func (o Options) baseBackoff() time.Duration {
	if o.BaseBackoff > 0 {
		return o.BaseBackoff
	}
	return 200 * time.Millisecond
}

func (o Options) maxBackoff() time.Duration {
	if o.MaxBackoff > 0 {
		return o.MaxBackoff
	}
	return 5 * time.Second
}

func (o Options) pollInterval() time.Duration {
	if o.PollInterval > 0 {
		return o.PollInterval
	}
	return 50 * time.Millisecond
}

// Client talks to one dwmserved instance. It is safe for concurrent use
// when the underlying http.Client is (the default is).
type Client struct {
	opts  Options
	http  *http.Client
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a Client for the server at opts.BaseURL.
func New(opts Options) *Client {
	c := &Client{opts: opts, http: opts.HTTP, sleep: opts.Sleep}
	if c.http == nil {
		c.http = http.DefaultClient
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	return c
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// APIError is a non-retryable HTTP failure from the server.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// mix64 is the splitmix64 finalizer — the tree-wide derivation for
// decorrelated deterministic streams.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// backoffFor computes attempt's retry delay (attempt is 1-based over
// completed tries): exponential growth capped at MaxBackoff, with
// full jitter drawn deterministically from (key, attempt). The
// schedule is a pure function of the request identity, so a flaky run
// is reproducible, while distinct requests spread out.
func (c *Client) backoffFor(key string, attempt int) time.Duration {
	ceil := c.opts.baseBackoff() << (attempt - 1)
	if max := c.opts.maxBackoff(); ceil > max || ceil <= 0 {
		ceil = max
	}
	var h uint64 = 0x9E3779B97F4A7C15
	for _, b := range []byte(key) {
		h = mix64(h ^ uint64(b))
	}
	frac := mix64(h + uint64(attempt)*0xD1B54A32D192ED03)
	// Full jitter in [ceil/2, ceil]: never less than half the nominal
	// delay (so retries still back off), never more than the cap.
	half := ceil / 2
	return half + time.Duration(frac%uint64(half+1))
}

// retryAfter parses a 429's Retry-After header, in seconds.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// do POSTs or GETs once and classifies the outcome. A valid tc is
// injected as a traceparent header, the propagation half of
// cross-process tracing: the server extracts it and its spans land in
// the caller's trace.
func (c *Client) do(ctx context.Context, tc obs.TraceContext, method, path string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.opts.BaseURL+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tc.Valid() {
		req.Header.Set("traceparent", tc.TraceParent())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp, nil, err
	}
	return resp, payload, nil
}

// apiMessage extracts the server's error envelope, falling back to the
// raw body.
func apiMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(body)
}

// roundTrip runs one API call under the retry policy. key seeds the
// deterministic jitter and names the call for the OnRetry hook. The
// injected trace is the context's TraceContext when the caller attached
// one (Submit attaches the request's canonical trace), else a
// deterministic derivation from key — every request carries a
// traceparent, and equal calls carry equal traces.
func (c *Client) roundTrip(ctx context.Context, key, method, path string, body []byte, out any) error {
	tc, ok := obs.TraceFromContext(ctx)
	if !ok {
		tc = obs.DeriveTraceContext("client/" + key)
	}
	maxAttempts := c.opts.maxAttempts()
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, payload, err := c.do(ctx, tc, method, path, body)
		var wait time.Duration
		status := 0
		switch {
		case err != nil:
			// Transport failure: connection reset/refused — the restart
			// window. Retry unless the context is the cause.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			wait = c.backoffFor(key, attempt)
		case resp.StatusCode == http.StatusTooManyRequests:
			status = resp.StatusCode
			lastErr = &APIError{Status: resp.StatusCode, Message: apiMessage(payload)}
			// Honor the server's hint exactly — it is already jittered per
			// request; fall back to our own backoff when the hint is absent.
			if d, ok := retryAfter(resp); ok {
				wait = d
			} else {
				wait = c.backoffFor(key, attempt)
			}
		case resp.StatusCode >= 500:
			status = resp.StatusCode
			lastErr = &APIError{Status: resp.StatusCode, Message: apiMessage(payload)}
			wait = c.backoffFor(key, attempt)
		case resp.StatusCode >= 400:
			return &APIError{Status: resp.StatusCode, Message: apiMessage(payload)}
		default:
			if out == nil {
				return nil
			}
			return json.Unmarshal(payload, out)
		}
		if attempt >= maxAttempts {
			return fmt.Errorf("client: %d attempts exhausted: %w", maxAttempts, lastErr)
		}
		if c.opts.OnRetry != nil {
			c.opts.OnRetry(RetryInfo{Op: key, Attempt: attempt, Status: status, Err: lastErr, Wait: wait})
		}
		if err := c.sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// Submit sends a placement request and returns the accepted (or
// deduped) job's status. Unless DisableIdempotency is set or the caller
// supplied a ClientKey, the request is stamped with its deterministic
// identity key, so retries and resubmissions converge on one job.
func (c *Client) Submit(ctx context.Context, req serve.PlaceRequest) (serve.JobStatus, error) {
	if req.ClientKey == "" && !c.opts.DisableIdempotency {
		req.ClientKey = serve.RequestKey(req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobStatus{}, err
	}
	// Submissions travel under the request's canonical trace — the same
	// derivation the server falls back to — so the trace ID a caller
	// computes client-side (serve.RequestTrace) is the one that shows up
	// in the server's spans and the job's status, retries and idempotent
	// resubmissions included.
	if _, ok := obs.TraceFromContext(ctx); !ok {
		ctx = obs.ContextWithTrace(ctx, serve.RequestTrace(req))
	}
	var js serve.JobStatus
	if err := c.roundTrip(ctx, req.ClientKey+"/submit", http.MethodPost, "/v1/place", body, &js); err != nil {
		return serve.JobStatus{}, err
	}
	return js, nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (serve.JobStatus, error) {
	var js serve.JobStatus
	if err := c.roundTrip(ctx, id+"/get", http.MethodGet, "/v1/jobs/"+id, nil, &js); err != nil {
		return serve.JobStatus{}, err
	}
	return js, nil
}

// Cancel requests cancellation; the job completes with its best-so-far
// placement marked partial.
func (c *Client) Cancel(ctx context.Context, id string) (serve.JobStatus, error) {
	var js serve.JobStatus
	if err := c.roundTrip(ctx, id+"/cancel", http.MethodDelete, "/v1/jobs/"+id, nil, &js); err != nil {
		return serve.JobStatus{}, err
	}
	return js, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (serve.JobStatus, error) {
	for {
		js, err := c.Job(ctx, id)
		if err != nil {
			return serve.JobStatus{}, err
		}
		if js.Status == "done" || js.Status == "failed" {
			return js, nil
		}
		if err := c.sleep(ctx, c.opts.pollInterval()); err != nil {
			return serve.JobStatus{}, err
		}
	}
}

// Run is Submit followed by Wait: one call from request to result.
func (c *Client) Run(ctx context.Context, req serve.PlaceRequest) (serve.JobStatus, error) {
	js, err := c.Submit(ctx, req)
	if err != nil {
		return serve.JobStatus{}, err
	}
	if js.Status == "done" || js.Status == "failed" {
		return js, nil
	}
	return c.Wait(ctx, js.ID)
}

// CreateStream opens a streaming placement session.
func (c *Client) CreateStream(ctx context.Context, req serve.StreamRequest) (serve.StreamStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.StreamStatus{}, err
	}
	var st serve.StreamStatus
	if err := c.roundTrip(ctx, "stream/create", http.MethodPost, "/v1/streams", body, &st); err != nil {
		return serve.StreamStatus{}, err
	}
	return st, nil
}

// AppendStream feeds a batch of accesses into a session and returns the
// resulting status. Appends are NOT idempotent on the server (each
// journaled batch is applied), so retries here can double-apply a batch
// whose response was lost; callers that need exactly-once should treat
// an AppendStream error as "stream state unknown" and re-read it.
func (c *Client) AppendStream(ctx context.Context, id string, accesses []int) (serve.StreamStatus, error) {
	body, err := json.Marshal(serve.StreamAppendRequest{Accesses: accesses})
	if err != nil {
		return serve.StreamStatus{}, err
	}
	var st serve.StreamStatus
	if err := c.roundTrip(ctx, id+"/append", http.MethodPost, "/v1/streams/"+id+"/append", body, &st); err != nil {
		return serve.StreamStatus{}, err
	}
	return st, nil
}

// DeleteStream closes a session and returns its final status.
func (c *Client) DeleteStream(ctx context.Context, id string) (serve.StreamStatus, error) {
	var st serve.StreamStatus
	if err := c.roundTrip(ctx, id+"/delete", http.MethodDelete, "/v1/streams/"+id, nil, &st); err != nil {
		return serve.StreamStatus{}, err
	}
	return st, nil
}
