package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// startJournaled boots a server whose journal lives under dir and
// returns a stop function that drains the server and closes the wal —
// the clean half of a restart. Unlike startServer's Cleanup, stop can
// be called mid-test so a second instance can recover from the same
// directory.
func startJournaled(t *testing.T, dir string, opts Options) (*Server, string, func()) {
	t.Helper()
	jl, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	opts.Journal = jl
	s, err := New(opts)
	if err != nil {
		jl.Close()
		t.Fatalf("new with journal: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		if err := jl.Close(); err != nil {
			t.Errorf("wal close: %v", err)
		}
	}
	t.Cleanup(stop)
	return s, "http://" + ln.Addr().String(), stop
}

// appendRaw writes one journal record straight into the wal directory —
// the test's way of forging "the server crashed right after this record
// became durable".
func appendRaw(t *testing.T, dir string, recs ...journalRecord) {
	t.Helper()
	jl, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := jl.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveredJobByteIdenticalToUninterruptedRun is the acceptance
// criterion: a job whose journal holds only the acceptance (the crash
// landed mid-run) is re-derived on replay, and the recovered placement
// is byte-for-byte the placement an uninterrupted journal-less server
// computes for the same request.
func TestRecoveredJobByteIdenticalToUninterruptedRun(t *testing.T) {
	req := PlaceRequest{Trace: testTrace(t), Seed: 7, Iterations: 20000}

	// Control: the uninterrupted run. The cache is disabled on both
	// sides so each derives from scratch.
	_, base := startServer(t, Options{Workers: 1, DisableCache: true})
	_, id := submit(t, base, req)
	want := waitDone(t, base, id)
	if want.Status != statusDone {
		t.Fatalf("control run failed: %s", want.Error)
	}

	// Crash artifact: a journal holding just the accept record.
	dir := t.TempDir()
	appendRaw(t, dir, journalRecord{T: recJobAccept, ID: "job-000005", Req: &req})

	_, base2, _ := startJournaled(t, dir, Options{Workers: 1, DisableCache: true})
	got := waitDone(t, base2, "job-000005")
	if got.Status != statusDone {
		t.Fatalf("recovered job failed: %s", got.Error)
	}
	if got.Result.Cost != want.Result.Cost ||
		fmt.Sprint(got.Result.Placement) != fmt.Sprint(want.Result.Placement) {
		t.Errorf("recovered placement diverged from uninterrupted run: cost %d vs %d",
			got.Result.Cost, want.Result.Cost)
	}
	// The recovered server must mint fresh IDs past the replayed ones.
	_, freshID := submit(t, base2, PlaceRequest{Trace: testTrace(t), Seed: 9, Iterations: 2000})
	if freshID != "job-000006" {
		t.Errorf("fresh job ID %s, want job-000006 (counter must resume past replayed IDs)", freshID)
	}
}

// TestTerminalJobServedFromJournal: a job that finished before the
// restart is served from its journaled bytes without re-running.
func TestTerminalJobServedFromJournal(t *testing.T) {
	dir := t.TempDir()
	req := PlaceRequest{Trace: testTrace(t), Seed: 3, Iterations: 4000}
	_, base, stop := startJournaled(t, dir, Options{Workers: 1, DisableCache: true})
	_, id := submit(t, base, req)
	want := waitDone(t, base, id)
	stop()

	_, base2, _ := startJournaled(t, dir, Options{Workers: 1, DisableCache: true})
	got := getJob(t, base2, id)
	if got.Status != statusDone {
		t.Fatalf("journaled terminal job came back %s", got.Status)
	}
	if fmt.Sprint(got.Result.Placement) != fmt.Sprint(want.Result.Placement) {
		t.Errorf("stored result mutated across restart")
	}
}

// TestCheckpointSeedsRecoveredJob: a journaled checkpoint pre-seeds the
// recovered job's best-so-far, so cancelling immediately after recovery
// still yields at least the pre-crash best.
func TestCheckpointSeedsRecoveredJob(t *testing.T) {
	dir := t.TempDir()
	req := PlaceRequest{Trace: testTrace(t), Seed: 5, Iterations: 2000}
	ckpt := make([]int, 48)
	for i := range ckpt {
		ckpt[i] = i
	}
	appendRaw(t, dir,
		journalRecord{T: recJobAccept, ID: "job-000001", Req: &req},
		journalRecord{T: recJobCheckpoint, ID: "job-000001", Placement: ckpt, Cost: 123456},
	)
	s, _, _ := startJournaled(t, dir, Options{Workers: 1, DisableCache: true})
	j, ok := s.lookup("job-000001")
	if !ok {
		t.Fatal("recovered job missing from registry")
	}
	best, ok := j.best()
	if !ok {
		t.Fatal("recovered job has no best-so-far despite a journaled checkpoint")
	}
	// The worker may already have improved past the seeded checkpoint;
	// what must hold is that a best existed from the instant New returned
	// and covers the full item space.
	if len(best) != 48 {
		t.Fatalf("recovered checkpoint covers %d items, want 48", len(best))
	}
}

// TestStreamReplayedByteIdentical: a stream's status after restart is
// byte-identical to its status before — the chunk-invariance contract
// re-derived from the journaled batches.
func TestStreamReplayedByteIdentical(t *testing.T) {
	dir := t.TempDir()
	_, base, stop := startJournaled(t, dir, Options{})
	code, st := createStream(t, base, StreamRequest{Items: 32, Seed: 11, RoundEvery: 16})
	if code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	for batch := 0; batch < 6; batch++ {
		acc := make([]int, 20)
		for i := range acc {
			acc[i] = (batch*7 + i*3) % 32
		}
		if code, _ := appendStream(t, base, st.ID, acc); code != http.StatusOK {
			t.Fatalf("append %d: %d", batch, code)
		}
	}
	want := getStream(t, base, st.ID)
	stop()

	_, base2, _ := startJournaled(t, dir, Options{})
	got := getStream(t, base2, st.ID)
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Errorf("stream status diverged across restart:\n pre: %s\npost: %s", wb, gb)
	}
}

// TestDeletedStreamNeverResurrected (run under -race in ci): DELETE
// racing in-flight appends must never leave a journaled-but-orphaned
// session after replay. Whatever interleaving the race takes, a
// tombstoned stream is gone for good.
func TestDeletedStreamNeverResurrected(t *testing.T) {
	dir := t.TempDir()
	_, base, stop := startJournaled(t, dir, Options{})
	code, st := createStream(t, base, StreamRequest{Items: 16, Seed: 1})
	if code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}

	// Appenders race the delete; status codes are deliberately ignored —
	// 200, 404, and 503 are all legal outcomes mid-race.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body, _ := json.Marshal(StreamAppendRequest{Accesses: []int{(g + i) % 16}})
				resp, err := http.Post(base+"/v1/streams/"+st.ID+"/append", "application/json",
					bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(g)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/streams/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deleted := resp.StatusCode == http.StatusOK
	wg.Wait()
	stop()

	s2, base2, _ := startJournaled(t, dir, Options{})
	if deleted {
		if _, ok := s2.lookupStream(st.ID); ok {
			t.Fatal("tombstoned stream resurrected by replay")
		}
		gr, err := http.Get(base2 + "/v1/streams/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		gr.Body.Close()
		if gr.StatusCode != http.StatusNotFound {
			t.Fatalf("GET deleted stream after replay: %d, want 404", gr.StatusCode)
		}
	}
}

// TestClientKeyIdempotentAcrossRestart: a ClientKey resubmission returns
// the original job, even when the original was accepted by the previous
// process.
func TestClientKeyIdempotentAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := PlaceRequest{Trace: testTrace(t), Seed: 2, Iterations: 2000}
	req.ClientKey = RequestKey(req)

	_, base, stop := startJournaled(t, dir, Options{Workers: 1, DisableCache: true})
	_, id := submit(t, base, req)
	waitDone(t, base, id)

	// Same-process resubmission dedupes with 200 + the original job.
	resp, body := postJSON(t, base+"/v1/place", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedupe status %d: %s", resp.StatusCode, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.ID != id {
		t.Fatalf("dedupe returned job %s, want %s", js.ID, id)
	}
	stop()

	// Post-restart resubmission hits the replayed key index.
	_, base2, _ := startJournaled(t, dir, Options{Workers: 1, DisableCache: true})
	resp2, body2 := postJSON(t, base2+"/v1/place", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-restart dedupe status %d: %s", resp2.StatusCode, body2)
	}
	var js2 JobStatus
	if err := json.Unmarshal(body2, &js2); err != nil {
		t.Fatal(err)
	}
	if js2.ID != id {
		t.Fatalf("post-restart dedupe returned job %s, want %s", js2.ID, id)
	}
}

// TestRetryAfterJitterDeterministic pins the jittered Retry-After for a
// fixed request: base 2s, identity-hash jitter in [0, 2].
func TestRetryAfterJitterDeterministic(t *testing.T) {
	req := PlaceRequest{Trace: testTrace(t), Seed: 1, Iterations: 3_000_000}
	want := 2 + int(requestDigest(req)%3)
	if want < 2 || want > 4 {
		t.Fatalf("jittered hint %d outside [2, 4]", want)
	}
	// The same request always derives the same hint, and the hint is a
	// pure function of the identity fields — ClientKey must not perturb it.
	withKey := req
	withKey.ClientKey = "opaque-client-token"
	if requestDigest(withKey) != requestDigest(req) {
		t.Error("ClientKey leaked into the request identity digest")
	}
	seeded := req
	seeded.Seed = 2
	if requestDigest(seeded) == requestDigest(req) {
		t.Error("digest ignores the seed")
	}
}

// TestJournalSkipsForeignRecords: unknown record types and undecodable
// payloads are skipped, not fatal — a journal written by a newer build
// still replays.
func TestJournalSkipsForeignRecords(t *testing.T) {
	dir := t.TempDir()
	req := PlaceRequest{Trace: testTrace(t), Seed: 4, Iterations: 2000}
	jl, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Append([]byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	future, _ := json.Marshal(journalRecord{T: "job.frobnicate", ID: "job-000009"})
	if err := jl.Append(future); err != nil {
		t.Fatal(err)
	}
	accept, _ := json.Marshal(journalRecord{T: recJobAccept, ID: "job-000001", Req: &req})
	if err := jl.Append(accept); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	_, base, _ := startJournaled(t, dir, Options{Workers: 1, DisableCache: true})
	js := waitDone(t, base, "job-000001")
	if js.Status != statusDone {
		t.Fatalf("job behind foreign records did not recover: %s", js.Error)
	}
}
