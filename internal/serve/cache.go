package serve

// This file is the service's placement-cache integration: pure planning
// logic (no clock, no goroutines — the dwmlint exemptions stay confined
// to server.go). A request whose effective policy is the anneal family
// and that does not resume an earlier job is content-addressed by the
// canonical fingerprint of its access-transition graph:
//
//   - Exact hit: a stored entry under the same (fingerprint, seed,
//     iterations, restarts) key is decanonicalized into the request's
//     numbering and served as a completed job without touching the
//     worker pool. For an identical request this replays the byte-exact
//     result the cold path produced (the entry was stored from exactly
//     that computation); for a renumbered twin it returns the stored
//     solution transported onto the request's numbering — a valid
//     placement with the same objective value, served at cache speed.
//   - Near hit: no exact entry, but one with the same degree-profile
//     signature and item count exists. Its placement seeds the anneal
//     as a warm start (AnnealOptions.Warmstart) when it beats the
//     proposed start, shrinking time-to-good-cost without changing the
//     result's contract.
//
// Resume requests bypass the cache entirely (their start placement is
// job-local state, not a function of the request), and partial results
// are never stored.

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/placecache"
	"repro/internal/trace"
)

// serveDevice is the cache key's device/objective descriptor: the
// service optimizes the single-tape Linear shift objective.
const serveDevice = "linear"

// servePolicyKey namespaces the service's entries so they never collide
// with core-level adapter entries for the same graph.
const servePolicyKey = "serve.anneal"

// cachePlan is the outcome of consulting the cache for one request. The
// graph and canonical form are always populated (the job reuses them),
// and exactly one of {hit, miss} applies: a non-nil hit carries the
// finished result; otherwise storeKey names where the job's eventual
// result belongs and warm optionally seeds the search.
type cachePlan struct {
	g     *graph.Graph
	canon *graph.Canonical
	key   placecache.Key
	hit   *Result
	warm  layout.Placement
}

// cacheable reports whether a request participates in the cache: the
// anneal policy (the only one whose cost justifies memoization and whose
// inputs the key covers), and no resume.
func cacheable(req PlaceRequest) bool {
	return (req.Policy == "" || req.Policy == PolicyAnneal) && req.Resume == ""
}

// planCache builds the request's graph, canonicalizes it, and consults
// the cache. The returned plan always carries the graph so the job
// avoids a second FromTrace.
func planCache(cache *placecache.Cache, req PlaceRequest, tr *trace.Trace) (*cachePlan, error) {
	g, err := graph.FromTrace(tr)
	if err != nil {
		return nil, err
	}
	cn := g.Freeze().Canon()
	plan := &cachePlan{
		g:     g,
		canon: cn,
		key: placecache.Key{
			FP:         cn.FP,
			Policy:     servePolicyKey,
			Device:     serveDevice,
			Seed:       effectiveSeed(req, tr),
			Iterations: req.Iterations,
			Restarts:   req.Restarts,
		},
	}
	if e, ok := cache.Get(plan.key); ok && len(e.Placement) == tr.NumItems {
		p := placecache.Decanonize(e.Placement, cn.Labeling)
		res, err := mintResult(tr, g, p)
		if err == nil {
			plan.hit = res
			return plan, nil
		}
		// An unusable entry (objective evaluation failed) degrades to a
		// miss; the job recomputes and overwrites nothing (first-wins).
	}
	if _, e, ok := cache.Nearest(cn.Profile, tr.NumItems); ok {
		plan.warm = placecache.Decanonize(e.Placement, cn.Labeling)
	}
	return plan, nil
}

// mintResult assembles a completed Result for a cached placement, with
// every cost recomputed in the request's own numbering: the baseline
// (program order) is not renumbering-invariant, and recomputing the
// placement's cost keeps the response honest even if transport and the
// stored cost ever disagreed.
func mintResult(tr *trace.Trace, g *graph.Graph, p layout.Placement) (*Result, error) {
	if err := p.Validate(tr.NumItems); err != nil {
		return nil, err
	}
	base, err := core.ProgramOrder(tr)
	if err != nil {
		return nil, err
	}
	baseCost, err := cost.Linear(g, base)
	if err != nil {
		return nil, err
	}
	c, err := cost.Linear(g, p)
	if err != nil {
		return nil, err
	}
	return &Result{Policy: PolicyAnneal, Placement: p, Cost: c, BaselineCost: baseCost}, nil
}

// storeEntry converts a finished result into the canonical-space entry
// stored under the plan's key.
func storeEntry(canon *graph.Canonical, res *Result) placecache.Entry {
	return placecache.Entry{
		Placement: placecache.Canonize(res.Placement, canon.Labeling),
		Cost:      res.Cost,
		Profile:   canon.Profile,
	}
}
