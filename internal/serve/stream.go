package serve

// This file is the pure half of the streaming surface: request/response
// types and the session bookkeeping behind POST /v1/streams. Like job.go
// it is clock-free and goroutine-free — the HTTP handlers, timing, and
// locking around the registry live in server.go.
//
// A stream wraps a core.Session: the client creates it once with an item
// count and seed, then feeds accesses in as many appends as it likes.
// The determinism contract mirrors the batch path's: the placement (and
// cost, and migration count) after N appended accesses is a pure function
// of (effective seed, the concatenated accesses) — chunking cannot show
// through, because the session ingests deltas commutatively and runs its
// improvement rounds at fixed access-count boundaries. The effective seed
// is derived from (request seed, stream name, item count) with
// bench.DeriveSeed, the same scheme the job path uses, so stream results
// are decorrelated from batch jobs sharing a user seed.

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
)

// maxStreamItems bounds the item space a stream may declare. The hard
// ceiling is graph.MaxVertices (the CSR vertex limit), but a stream's
// item count is a bare number in a tiny request body — unlike a trace
// upload, nothing else limits the allocation it implies — so the service
// caps it far below the point where the identity placement alone would
// be gigabytes.
const maxStreamItems = 1 << 22

// StreamRequest is the body of POST /v1/streams.
type StreamRequest struct {
	// Name labels the stream and feeds the effective-seed derivation;
	// empty selects the assigned stream ID.
	Name string `json:"name,omitempty"`
	// Items is the item-space size; every appended access must fall in
	// [0, Items).
	Items int `json:"items"`
	// Seed drives the session's improvement rounds (see core.SessionOptions).
	Seed int64 `json:"seed,omitempty"`
	// RoundEvery and RoundIterations tune the improvement cadence and
	// budget; zero selects the session defaults.
	RoundEvery      int `json:"round_every,omitempty"`
	RoundIterations int `json:"round_iterations,omitempty"`
	// Restarts runs that many concurrent chains per round.
	Restarts int `json:"restarts,omitempty"`
}

// StreamAppendRequest is the body of POST /v1/streams/{id}/append.
type StreamAppendRequest struct {
	Accesses []int `json:"accesses"`
}

// StreamStatus is the body of GET /v1/streams/{id} and of every append
// response: the stream's identity plus the session's current snapshot.
type StreamStatus struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Items      int    `json:"items"`
	Accesses   int64  `json:"accesses"`
	Rounds     int64  `json:"rounds"`
	Migrations int64  `json:"migrations"`
	// Cost is the Linear objective of Placement over the transition graph
	// of everything appended so far.
	Cost      int64 `json:"cost"`
	Placement []int `json:"placement"`
}

// stream is one live session in the server's registry.
type stream struct {
	id   string
	name string
	sess *core.Session

	// mu serializes journal-append and session-apply as one critical
	// section per batch, so the journal's record order is exactly the
	// order batches reached the session — the invariant that makes
	// replay reproduce the session byte-identically. The session has its
	// own internal synchronization; mu exists only for this ordering.
	mu sync.Mutex
}

// status renders the stream's externally visible state from the session's
// latest published snapshot.
func (st *stream) status() StreamStatus {
	snap := st.sess.Snapshot()
	return StreamStatus{
		ID:         st.id,
		Name:       st.name,
		Items:      snap.Items,
		Accesses:   snap.Accesses,
		Rounds:     snap.Rounds,
		Migrations: snap.Migrations,
		Cost:       snap.Cost,
		Placement:  snap.Placement,
	}
}

// newStream validates a create request and builds the stream and its
// session. id is the server-assigned stream ID; the effective name (used
// for seed derivation) falls back to it when the request has none.
func newStream(id string, req StreamRequest) (*stream, error) {
	if req.Items < 1 {
		return nil, fmt.Errorf("stream needs at least one item, got %d", req.Items)
	}
	if req.Items > maxStreamItems {
		return nil, fmt.Errorf("stream declares %d items; the service supports at most %d", req.Items, maxStreamItems)
	}
	name := req.Name
	if name == "" {
		name = id
	}
	sess, err := core.NewSession(core.SessionOptions{
		Items:           req.Items,
		Seed:            bench.DeriveSeed(req.Seed, "stream/"+name, req.Items),
		RoundEvery:      req.RoundEvery,
		RoundIterations: req.RoundIterations,
		Restarts:        req.Restarts,
	})
	if err != nil {
		// The session rejects only invalid item counts; the CSR limit is
		// unreachable under maxStreamItems but mapped anyway for safety.
		if errors.Is(err, graph.ErrTooManyVertices) {
			return nil, fmt.Errorf("stream declares %d items; the service supports at most %d", req.Items, maxStreamItems)
		}
		return nil, err
	}
	return &stream{id: id, name: name, sess: sess}, nil
}
