package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

// testTrace renders a small deterministic workload in the dwmtrace text
// format for embedding in requests.
func testTrace(t *testing.T) string {
	t.Helper()
	tr := workload.Zipf(48, 4000, 1.2, 7)
	var b bytes.Buffer
	if err := trace.Encode(&b, tr); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// startServer runs a Server on a loopback listener and returns its base
// URL. Cleanup drains the pool and closes the listener.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, "http://" + ln.Addr().String()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// submit posts a placement request and returns (status code, job ID).
func submit(t *testing.T, base string, req PlaceRequest) (int, string) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/place", req)
	if resp.StatusCode != http.StatusAccepted {
		return resp.StatusCode, ""
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatalf("bad 202 body %q: %v", body, err)
	}
	if js.ID == "" {
		t.Fatalf("202 with empty job id: %s", body)
	}
	return resp.StatusCode, js.ID
}

func getJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	return js
}

// waitDone polls until the job leaves the queue/running states.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		js := getJob(t, base, id)
		if js.Status == statusDone || js.Status == statusFailed {
			return js
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// checkPlacement validates the result invariants every finished job
// must satisfy: a valid compact placement whose cost does not exceed
// the program-order baseline.
func checkPlacement(t *testing.T, js JobStatus, items int) {
	t.Helper()
	if js.Result == nil {
		t.Fatalf("job %s finished without result (error %q)", js.ID, js.Error)
	}
	r := js.Result
	if len(r.Placement) != items {
		t.Fatalf("placement covers %d items, want %d", len(r.Placement), items)
	}
	seen := make([]bool, items)
	for item, slot := range r.Placement {
		if slot < 0 || slot >= items || seen[slot] {
			t.Fatalf("placement invalid at item %d -> slot %d", item, slot)
		}
		seen[slot] = true
	}
	if r.Cost > r.BaselineCost {
		t.Errorf("cost %d worse than program-order baseline %d", r.Cost, r.BaselineCost)
	}
}

func TestPlaceEndToEnd(t *testing.T) {
	_, base := startServer(t, Options{Workers: 2})
	code, id := submit(t, base, PlaceRequest{Trace: testTrace(t), Seed: 1, Iterations: 20000})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	js := waitDone(t, base, id)
	if js.Status != statusDone {
		t.Fatalf("status %s, error %q", js.Status, js.Error)
	}
	if js.Result.Partial {
		t.Error("uninterrupted job marked partial")
	}
	checkPlacement(t, js, 48)
	if js.Trace.Items != 48 || js.Trace.Accesses != 4000 {
		t.Errorf("trace info %+v", js.Trace)
	}
}

// The headline service guarantee: identical submissions produce
// byte-identical placements no matter which worker runs them.
func TestDeterministicAcrossWorkers(t *testing.T) {
	_, base := startServer(t, Options{Workers: 4, QueueCap: 16})
	req := PlaceRequest{Trace: testTrace(t), Seed: 42, Iterations: 20000, Restarts: 3}
	var ids []string
	for i := 0; i < 4; i++ {
		code, id := submit(t, base, req)
		if code != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, code)
		}
		ids = append(ids, id)
	}
	var first *Result
	for i, id := range ids {
		js := waitDone(t, base, id)
		if js.Status != statusDone {
			t.Fatalf("job %s: %s (%s)", id, js.Status, js.Error)
		}
		checkPlacement(t, js, 48)
		if i == 0 {
			first = js.Result
			continue
		}
		if js.Result.Cost != first.Cost || fmt.Sprint(js.Result.Placement) != fmt.Sprint(first.Placement) {
			t.Errorf("submission %d diverged: cost %d vs %d", i, js.Result.Cost, first.Cost)
		}
	}
}

// Saturating the queue must shed load with 429 + Retry-After and never
// drop a job that was accepted.
func TestBackpressureNeverDropsAccepted(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1, QueueCap: 1, RetryAfter: 2 * time.Second})
	slow := PlaceRequest{Trace: testTrace(t), Seed: 1, Iterations: 3_000_000}
	var accepted []string
	rejected := 0
	for i := 0; i < 10; i++ {
		raw, err := json.Marshal(slow)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var js JobStatus
			if err := json.Unmarshal(body.Bytes(), &js); err != nil {
				t.Fatal(err)
			}
			accepted = append(accepted, js.ID)
		case http.StatusTooManyRequests:
			rejected++
			// Retry-After is the configured base plus deterministic jitter
			// in [0, base] derived from the request's identity hash — fixed
			// request, fixed value (see TestRetryAfterJitterDeterministic).
			want := fmt.Sprintf("%d", 2+int(requestDigest(slow)%3))
			if ra := resp.Header.Get("Retry-After"); ra != want {
				t.Errorf("Retry-After = %q, want %q", ra, want)
			}
		default:
			t.Fatalf("submission %d: unexpected status %d: %s", i, resp.StatusCode, body)
		}
	}
	if rejected == 0 {
		t.Fatal("queue-saturating burst produced no 429s")
	}
	if len(accepted) == 0 {
		t.Fatal("burst produced no accepted jobs")
	}
	for _, id := range accepted {
		js := waitDone(t, base, id)
		if js.Status != statusDone {
			t.Errorf("accepted job %s dropped: %s (%s)", id, js.Status, js.Error)
			continue
		}
		checkPlacement(t, js, 48)
	}
}

// A job cut short by its deadline completes with a valid partial
// placement no worse than the program-order baseline.
func TestDeadlineReturnsPartial(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	code, id := submit(t, base, PlaceRequest{
		Trace: testTrace(t), Seed: 1, Iterations: 2_000_000_000, DeadlineMS: 60,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	js := waitDone(t, base, id)
	if js.Status != statusDone {
		t.Fatalf("status %s, error %q", js.Status, js.Error)
	}
	if !js.Result.Partial {
		t.Error("deadline-cut job not marked partial")
	}
	checkPlacement(t, js, 48)
}

// DELETE cancels a running job, which still yields a valid partial.
func TestCancelRunningJob(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	_, id := submit(t, base, PlaceRequest{Trace: testTrace(t), Seed: 1, Iterations: 2_000_000_000})
	// Wait until it is actually running so the cancel exercises the
	// mid-flight path; a still-queued cancel is also legal but weaker.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && getJob(t, base, id).Status != statusRunning {
		time.Sleep(2 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	js := waitDone(t, base, id)
	if js.Status != statusDone {
		t.Fatalf("status %s, error %q", js.Status, js.Error)
	}
	if !js.Result.Partial {
		t.Error("cancelled job not marked partial")
	}
	checkPlacement(t, js, 48)
}

// Resubmitting with resume continues from the earlier job's checkpoint:
// the resumed run can only improve on it.
func TestResumeFromCheckpoint(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	tr := testTrace(t)
	_, id := submit(t, base, PlaceRequest{Trace: tr, Seed: 1, Iterations: 2_000_000_000, DeadlineMS: 60})
	first := waitDone(t, base, id)
	if first.Status != statusDone || !first.Result.Partial {
		t.Fatalf("setup job not partial: %+v", first)
	}
	_, id2 := submit(t, base, PlaceRequest{Trace: tr, Seed: 1, Iterations: 20000, Resume: id})
	second := waitDone(t, base, id2)
	if second.Status != statusDone {
		t.Fatalf("resumed job failed: %s", second.Error)
	}
	checkPlacement(t, second, 48)
	if second.Result.Cost > first.Result.Cost {
		t.Errorf("resumed cost %d worse than checkpoint %d", second.Result.Cost, first.Result.Cost)
	}
}

// When the drain budget expires with a job still running, Shutdown
// reports the blown budget but the job is cut short into a valid
// partial rather than abandoned.
func TestShutdownBudgetCutsRunningJobToPartial(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	_, id := submit(t, base, PlaceRequest{Trace: testTrace(t), Seed: 1, Iterations: 2_000_000_000})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && getJob(t, base, id).Status != statusRunning {
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	j, ok := s.lookup(id)
	if !ok {
		t.Fatal("job vanished")
	}
	js := j.snapshot(time.Now())
	if js.Status != statusDone || js.Result == nil {
		t.Fatalf("cut-short job: %+v", js)
	}
	if !js.Result.Partial {
		t.Error("budget-cut job not marked partial")
	}
	checkPlacement(t, js, 48)
}

func TestRequestValidation(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		req  PlaceRequest
		want int
	}{
		{"missing trace", PlaceRequest{}, http.StatusBadRequest},
		{"garbage trace", PlaceRequest{Trace: "not a trace"}, http.StatusBadRequest},
		{"unknown policy", PlaceRequest{Trace: testTrace(t), Policy: "bogus"}, http.StatusBadRequest},
		{"unknown resume", PlaceRequest{Trace: testTrace(t), Resume: "job-999999"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, base+"/v1/place", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
	// Invalid JSON body.
	resp, err := http.Post(base+"/v1/place", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: status %d", resp.StatusCode)
	}
	// Unknown job ID.
	jr, err := http.Get(base + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", jr.StatusCode)
	}
}

// Non-anneal policies run to completion through the same API.
func TestConstructivePolicy(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	_, id := submit(t, base, PlaceRequest{Trace: testTrace(t), Policy: "organpipe", Seed: 1})
	js := waitDone(t, base, id)
	if js.Status != statusDone {
		t.Fatalf("status %s, error %q", js.Status, js.Error)
	}
	if js.Result.Policy != "organpipe" || js.Result.Partial {
		t.Errorf("result %+v", js.Result)
	}
	checkPlacement(t, js, 48)
}

func TestHealthReadyMetrics(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	// Metrics render the obs registry in the Prometheus text format;
	// submit one job so the serve instruments are present.
	_, id := submit(t, base, PlaceRequest{Trace: testTrace(t), Seed: 1, Iterations: 1000})
	waitDone(t, base, id)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	out := b.String()
	for _, want := range []string{
		"# TYPE dwm_serve_jobs_accepted counter",
		"dwm_serve_jobs_done",
		"dwm_core_anneal_iterations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
