// Package serve is the placement service behind cmd/dwmserved: an
// HTTP/JSON front end that turns trace uploads into placement jobs and
// runs them on a bounded, panic-isolated worker pool.
//
// The design goals, in order:
//
//   - Determinism. A job's result is a pure function of its request —
//     the effective annealing seed is derived from (request seed, trace
//     identity) with bench.DeriveSeed, never from worker identity or
//     scheduling — so two identical submissions return byte-identical
//     placements no matter which worker picks them up.
//   - Backpressure. The job queue is bounded; a submission that does
//     not fit is rejected immediately with 429 and a Retry-After hint
//     instead of growing an unbounded backlog. A job that was accepted
//     is never dropped: shutdown drains the queue before the process
//     exits.
//   - Graceful degradation. Jobs checkpoint their best-so-far placement
//     while annealing. A job cut short — per-request deadline, client
//     cancellation, shutdown — returns the checkpoint as a valid
//     partial result (marked "partial": true) instead of nothing, and a
//     later submission can resume from it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/trace"
)

// PolicyAnneal is the default (and only cancellable) policy: the
// proposed multi-start pipeline refined by simulated annealing.
const PolicyAnneal = "anneal"

// PlaceRequest is the body of POST /v1/place.
type PlaceRequest struct {
	// Trace is the access trace in the dwmtrace text format.
	Trace string `json:"trace"`
	// Policy selects the placement strategy; empty selects "anneal".
	// Any name from the core policy set is accepted, but only the
	// anneal family supports deadlines, checkpointing, and resume (the
	// constructive policies run to completion in milliseconds).
	Policy string `json:"policy,omitempty"`
	// Seed drives every randomized component. Equal requests with equal
	// seeds produce byte-identical placements.
	Seed int64 `json:"seed,omitempty"`
	// Iterations and Restarts tune the annealing stage; zero selects
	// the defaults (see core.AnnealOptions).
	Iterations int `json:"iterations,omitempty"`
	Restarts   int `json:"restarts,omitempty"`
	// DeadlineMS bounds the job's execution wall time in milliseconds;
	// 0 selects the server default. A job that hits its deadline
	// returns its best-so-far placement marked partial.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Resume names an earlier job whose checkpoint seeds this job's
	// search, so a cancelled or deadline-cut job can be continued.
	Resume string `json:"resume,omitempty"`
	// ClientKey, when set, makes the submission idempotent: a second
	// request carrying the same key returns the first request's job
	// instead of minting a duplicate. The key survives journal replay,
	// so resubmission after a server crash is safe too. RequestKey
	// derives the canonical key from the request's identity fields; any
	// opaque client-chosen token also works. ClientKey is not part of
	// the request's identity — it never influences the placement.
	ClientKey string `json:"client_key,omitempty"`
	// Tenant attributes the request to a caller for the per-tenant
	// labeled metrics (serve.tenant.*). Like ClientKey it is pure
	// attribution: it is excluded from the request's identity digest and
	// never influences the placement, so two tenants submitting the same
	// request share one computation.
	Tenant string `json:"tenant,omitempty"`
}

// TraceInfo summarizes the uploaded trace in job responses.
type TraceInfo struct {
	Name     string `json:"name"`
	Accesses int    `json:"accesses"`
	Items    int    `json:"items"`
}

// Result is the payload of a finished job.
type Result struct {
	Policy string `json:"policy"`
	// Placement maps item ID to tape slot (compact, [0, items)).
	Placement []int `json:"placement"`
	// Cost is the Linear objective of Placement; BaselineCost is the
	// same objective for the program-order baseline placement.
	Cost         int64 `json:"cost"`
	BaselineCost int64 `json:"baseline_cost"`
	// Partial marks a result produced by a job that was cut short
	// (deadline, cancellation, shutdown): the placement is valid and
	// never worse than the baseline, but the search did not finish.
	Partial bool `json:"partial"`
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID        string       `json:"id"`
	Status    string       `json:"status"` // queued | running | done | failed
	Trace     TraceInfo    `json:"trace"`
	Result    *Result      `json:"result,omitempty"`
	Error     string       `json:"error,omitempty"`
	ElapsedMS int64        `json:"elapsed_ms,omitempty"`
	Progress  *JobProgress `json:"progress,omitempty"`
	// CacheHit marks a job served straight from the placement cache:
	// the result was memoized from an earlier structurally identical
	// request and the worker pool never ran. It sits outside Result so
	// duplicate submissions stay byte-identical on the result payload.
	CacheHit bool `json:"cache_hit,omitempty"`
	// TraceID is the job's cross-process trace: the trace ID from the
	// caller's traceparent header, or the deterministic derivation from
	// the request identity when the caller sent none (see RequestTrace).
	// It survives journal replay, so a recovered job still answers polls
	// with the trace the original caller is following in /debug/events.
	TraceID string `json:"trace_id,omitempty"`
}

// JobProgress is the live view of a running annealing job, fed by the
// annealer's Progress hook on the checkpoint cadence. It is observational
// only — polling it never perturbs the search (see AnnealOptions.Progress).
type JobProgress struct {
	// BestCost is the lowest energy any chain has reached so far.
	BestCost int64 `json:"best_cost"`
	// Proposals and Accepted are summed across all restart chains.
	Proposals int64 `json:"proposals"`
	Accepted  int64 `json:"accepted"`
	// Chains is the number of chains that have reported at least once.
	Chains int `json:"chains"`
	// CheckpointAgeMS is the time since the last checkpointed
	// improvement, or -1 when no checkpoint exists yet. A large age on a
	// long-running job means the search has plateaued.
	CheckpointAgeMS int64 `json:"checkpoint_age_ms"`
}

// Job lifecycle states.
const (
	statusQueued  = "queued"
	statusRunning = "running"
	statusDone    = "done"
	statusFailed  = "failed"
)

// job is one accepted placement request moving through the queue.
type job struct {
	id       string
	req      PlaceRequest
	tr       *trace.Trace
	tc       obs.TraceContext // the job's trace identity, set at acceptance
	resume   layout.Placement // optional starting placement from a resumed job
	enqueued time.Time        // set at acceptance, read for the queue-wait timer

	// Cache integration (see cache.go). plan carries the pre-built graph
	// and canonical form plus either a warm start or the store key;
	// cacheHit marks a job minted directly from a cache hit.
	plan     *cachePlan
	cacheHit bool

	mu        sync.Mutex
	status    string                      //dwmlint:guard mu
	result    *Result                     //dwmlint:guard mu
	errMsg    string                      //dwmlint:guard mu
	elapsedMS int64                       //dwmlint:guard mu
	canceled  bool                        //dwmlint:guard mu
	cancel    context.CancelFunc          //dwmlint:guard mu
	ckpt      layout.Placement            //dwmlint:guard mu
	ckptCost  int64                       //dwmlint:guard mu
	ckptAt    time.Time                   //dwmlint:guard mu
	prog      map[int]core.AnnealProgress //dwmlint:guard mu
}

// recordCheckpoint keeps the lowest-cost placement seen so far and
// reports whether this call improved it (the journal hook in runJob
// writes a job.ckpt record exactly for improvements). It is the
// Checkpoint callback handed to the annealer, which may invoke it
// concurrently from restart chains. The caller supplies now — this file
// stays clock-free so job state remains a pure function of its inputs.
func (j *job) recordCheckpoint(p layout.Placement, c int64, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ckpt == nil || c < j.ckptCost {
		j.ckpt, j.ckptCost = p, c
		j.ckptAt = now
		return true
	}
	return false
}

// recordProgress stores the latest cumulative report from one annealing
// chain. Reports carry cumulative (not incremental) totals, so keeping
// only the newest per chain and summing across chains never double
// counts, regardless of interleaving.
func (j *job) recordProgress(pr core.AnnealProgress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.prog == nil {
		j.prog = make(map[int]core.AnnealProgress)
	}
	j.prog[pr.Chain] = pr
}

// best returns the job's best known placement — the final result when
// finished, else the latest checkpoint — or nil when nothing has been
// computed yet.
func (j *job) best() (layout.Placement, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result != nil && j.result.Placement != nil {
		return append(layout.Placement(nil), j.result.Placement...), true
	}
	if j.ckpt != nil {
		return j.ckpt.Clone(), true
	}
	return nil, false
}

// snapshot renders the job's externally visible state. now anchors the
// checkpoint-age computation (the caller reads the clock; this file does
// not). The progress block appears once any chain has reported and is
// kept on finished jobs so a client polling after completion still sees
// the final search totals.
func (j *job) snapshot(now time.Time) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:     j.id,
		Status: j.status,
		Trace: TraceInfo{
			Name:     j.tr.Name,
			Accesses: j.tr.Len(),
			Items:    j.tr.NumItems,
		},
		Result:    j.result,
		Error:     j.errMsg,
		ElapsedMS: j.elapsedMS,
		CacheHit:  j.cacheHit,
		TraceID:   j.tc.TraceID,
	}
	if len(j.prog) > 0 {
		p := &JobProgress{CheckpointAgeMS: -1}
		first := true
		for _, pr := range j.prog {
			p.Proposals += pr.Proposals
			p.Accepted += pr.Accepted
			if first || pr.BestCost < p.BestCost {
				p.BestCost = pr.BestCost
				first = false
			}
			p.Chains++
		}
		if !j.ckptAt.IsZero() {
			p.CheckpointAgeMS = now.Sub(j.ckptAt).Milliseconds()
		}
		st.Progress = p
	}
	return st
}

// requestCancel cancels a running job, or marks a queued one so it
// yields its seed placement as a partial result the moment a worker
// picks it up.
func (j *job) requestCancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.canceled = true
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// parseTrace decodes and validates the request's embedded trace.
func parseTrace(req PlaceRequest) (*trace.Trace, error) {
	if strings.TrimSpace(req.Trace) == "" {
		return nil, fmt.Errorf("missing trace")
	}
	tr, err := trace.Decode(strings.NewReader(req.Trace))
	if err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("trace has no accesses")
	}
	// Reject item spaces beyond the CSR vertex limit here, at the HTTP
	// boundary, so an oversized upload is a 400 — graph.FromTrace would
	// reject it anyway, but only after the job was accepted, turning a
	// client mistake into a failed job instead of a validation error.
	if tr.NumItems >= graph.MaxVertices {
		return nil, fmt.Errorf("trace declares %d items; the service supports at most %d", tr.NumItems, graph.MaxVertices-1)
	}
	return tr, nil
}

// validPolicy reports whether the request's policy name is servable.
func validPolicy(name string) bool {
	if name == "" || name == PolicyAnneal {
		return true
	}
	for _, n := range core.PolicyNames() {
		if n == name {
			return true
		}
	}
	return false
}

// effectiveSeed derives the seed the job's randomized stages use. It is
// a pure function of the request — seed and trace identity — so results
// are byte-identical regardless of which worker runs the job, while the
// splitmix finalizer in bench.DeriveSeed decorrelates service streams
// from the CLI/benchmark streams that share the same user seed.
func effectiveSeed(req PlaceRequest, tr *trace.Trace) int64 {
	return bench.DeriveSeed(req.Seed, "serve/"+tr.Name, tr.Len())
}

// execute computes the job's placement. It is a pure function of
// (request, resume placement, warm placement); ctx cuts the annealing
// stage short, in which case the best-so-far placement comes back
// marked Partial. g, when non-nil, is the trace's pre-built transition
// graph (the cache planner already paid for it); warm, when non-nil,
// is a cached near-match that seeds the anneal if it beats the proposed
// start; warmApplied (optional) fires exactly when that adoption happens,
// so warm-start accounting reflects applications rather than lookups. The
// checkpoint callback receives best-so-far placements as the search
// progresses, and progress (optional) receives cumulative search
// statistics for live introspection; both must be safe for concurrent
// use, and none of the callbacks influences the search.
func execute(ctx context.Context, req PlaceRequest, tr *trace.Trace, g *graph.Graph, resume, warm layout.Placement, warmApplied func(), checkpoint func(layout.Placement, int64), progress func(core.AnnealProgress)) (*Result, error) {
	if g == nil {
		built, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		g = built
	}
	base, err := core.ProgramOrder(tr)
	if err != nil {
		return nil, err
	}
	baseCost, err := cost.Linear(g, base)
	if err != nil {
		return nil, err
	}
	seed := effectiveSeed(req, tr)

	policy := req.Policy
	if policy == "" {
		policy = PolicyAnneal
	}
	if policy != PolicyAnneal {
		pol, err := core.PolicyByName(policy, seed)
		if err != nil {
			return nil, err
		}
		p, err := pol.Place(tr, g)
		if err != nil {
			return nil, err
		}
		c, err := cost.Linear(g, p)
		if err != nil {
			return nil, err
		}
		return &Result{Policy: policy, Placement: p, Cost: c, BaselineCost: baseCost}, nil
	}

	// Anneal path: start from the resumed checkpoint when one was
	// supplied, else from the proposed pipeline (which seeds with
	// program order, so the start — and therefore every best-so-far
	// checkpoint — is never worse than the baseline).
	start := resume
	if start == nil {
		p, _, err := core.Propose(tr, g)
		if err != nil {
			return nil, err
		}
		start = p
	}
	startCost, err := cost.Linear(g, start)
	if err != nil {
		return nil, err
	}
	// Adopt a cached warm start only when it strictly beats the start we
	// would otherwise use: the start (and so every checkpoint) stays
	// never-worse-than-baseline, and a useless near-match changes nothing.
	if resume == nil && warm != nil {
		if wc, err := cost.Linear(g, warm); err == nil && wc < startCost {
			start, startCost = warm, wc
			if warmApplied != nil {
				warmApplied()
			}
		}
	}
	// Record the starting point immediately: even a job cancelled
	// before its first annealing checkpoint has a valid best-so-far.
	checkpoint(start.Clone(), startCost)

	p, c, err := core.AnnealContext(ctx, g, start, core.AnnealOptions{
		Seed:       seed,
		Iterations: req.Iterations,
		Restarts:   req.Restarts,
		Checkpoint: checkpoint,
		Progress:   progress,
	})
	if err != nil {
		if p != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return &Result{Policy: policy, Placement: p, Cost: c, BaselineCost: baseCost, Partial: true}, nil
		}
		return nil, err
	}
	return &Result{Policy: policy, Placement: p, Cost: c, BaselineCost: baseCost}, nil
}
