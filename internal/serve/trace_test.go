package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// submitTraced posts a placement request with an explicit traceparent
// header and returns the 202 body.
func submitTraced(t *testing.T, base string, req PlaceRequest, tc obs.TraceContext) JobStatus {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/place", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("traceparent", tc.TraceParent())
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with traceparent: status %d", resp.StatusCode)
	}
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	return js
}

// TestTracePropagationEndToEnd is the tentpole proof: a caller-minted
// trace ID rides the traceparent header into the server, lands on the
// job (202 body and every later poll), and stamps the server-side spans
// in /debug/events — one ID from the caller through queue and anneal.
func TestTracePropagationEndToEnd(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1, EventBuffer: 4096})
	t.Cleanup(obs.DisableTracing)
	obs.DrainSpans() // discard spans from earlier tests in this process

	tc := obs.DeriveTraceContext("test/e2e-propagation")
	js := submitTraced(t, base, PlaceRequest{Trace: testTrace(t), Seed: 3, Iterations: 2000}, tc)
	if js.TraceID != tc.TraceID {
		t.Fatalf("202 trace_id = %q, want %q", js.TraceID, tc.TraceID)
	}
	done := waitDone(t, base, js.ID)
	if done.TraceID != tc.TraceID {
		t.Fatalf("final trace_id = %q, want %q", done.TraceID, tc.TraceID)
	}

	ev := getEvents(t, base)
	inTrace := map[string]bool{}
	sawRemote := false
	for _, sp := range ev.Spans {
		if sp.Trace == tc.TraceID {
			inTrace[sp.Name] = true
			if sp.Remote != "" {
				sawRemote = true
			}
		}
	}
	for _, want := range []string{"serve.job.run", "core.anneal.chain"} {
		if !inTrace[want] {
			t.Errorf("no %q span under trace %s; got %v", want, tc.TraceID, inTrace)
		}
	}
	if !sawRemote {
		t.Error("no span recorded the propagated remote parent")
	}
	// The events contract: spans come back sorted by (trace, start seq).
	for i := 1; i < len(ev.Spans); i++ {
		a, b := ev.Spans[i-1], ev.Spans[i]
		if a.Trace > b.Trace || (a.Trace == b.Trace && a.ID > b.ID) {
			t.Fatalf("spans not sorted at %d: (%q,%d) before (%q,%d)", i, a.Trace, a.ID, b.Trace, b.ID)
		}
	}
}

// Without a traceparent header the job still gets a trace ID — the
// deterministic derivation from the request identity, the same one the
// serve client injects. Identical requests share a trace.
func TestTraceDerivedWhenHeaderAbsent(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	req := PlaceRequest{Trace: testTrace(t), Seed: 9, Iterations: 100}
	_, id := submit(t, base, req)
	js := waitDone(t, base, id)
	if want := RequestTrace(req).TraceID; js.TraceID != want {
		t.Fatalf("derived trace_id = %q, want %q", js.TraceID, want)
	}
}

// TestTraceSurvivesJournalReplay restarts a journaled server and checks
// a recovered job still answers polls with the original caller's trace.
func TestTraceSurvivesJournalReplay(t *testing.T) {
	dir := t.TempDir()
	_, base, stop := startJournaled(t, dir, Options{Workers: 1})
	tc := obs.DeriveTraceContext("test/replay-trace")
	js := submitTraced(t, base, PlaceRequest{Trace: testTrace(t), Seed: 4, Iterations: 500}, tc)
	waitDone(t, base, js.ID)
	stop()

	_, base2, stop2 := startJournaled(t, dir, Options{Workers: 1})
	defer stop2()
	recovered := waitDone(t, base2, js.ID)
	if recovered.TraceID != tc.TraceID {
		t.Fatalf("recovered trace_id = %q, want %q", recovered.TraceID, tc.TraceID)
	}
}

// Journals written before the Trace field existed fall back to the
// deterministic request-identity derivation at replay.
func TestRecoveredJobTraceFallback(t *testing.T) {
	req := PlaceRequest{Trace: testTrace(t), Seed: 11}
	rec := &recoveredJob{id: "job-000001", req: req} // no trace recorded
	if got, want := rec.traceContext(), RequestTrace(req); got != want {
		t.Fatalf("fallback trace = %+v, want %+v", got, want)
	}
	// A recorded trace wins.
	tc := obs.DeriveTraceContext("recorded")
	rec.trace = tc.TraceParent()
	if got := rec.traceContext(); got != tc {
		t.Fatalf("recorded trace = %+v, want %+v", got, tc)
	}
}

// TestQueueDepthSymmetry hammers submit+cancel from many goroutines and
// checks the queue-depth gauge returns exactly to its starting value:
// the increment-before-send / decrement-at-dequeue accounting can
// neither leak nor go negative, no matter how cancels interleave.
func TestQueueDepthSymmetry(t *testing.T) {
	s, base := startServer(t, Options{Workers: 2, QueueCap: 64})
	depth0 := obs.GetGauge("serve.queue.depth").Value()
	tr := testTrace(t)

	var wg sync.WaitGroup
	ids := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				code, id := submit(t, base, PlaceRequest{
					Trace: tr, Seed: int64(g*100 + i), Iterations: 3000, Restarts: 1,
				})
				if code == http.StatusAccepted {
					ids <- id
				}
			}
		}(g)
	}
	// Cancel concurrently with the submissions still in flight.
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for id := range ids {
			req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	close(ids)
	cwg.Wait()

	// Every accepted job reaches a terminal state (cancelled jobs finish
	// as partials); then the gauge must be back where it started.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if obs.GetGauge("serve.queue.depth").Value() == depth0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d := obs.GetGauge("serve.queue.depth").Value(); d != depth0 {
		t.Fatalf("queue depth %d after drain, want %d", d, depth0)
	}
	// Gauge never visibly negative in the final state; the server is
	// still live (not shut down) here.
	_ = s
}

// TestTenantLabeledMetrics checks the per-tenant series the serving
// layer stamps: requests counted under (tenant, policy, outcome) and
// wall-time histograms carrying a trace-ID exemplar, in promlint-clean
// exposition.
func TestTenantLabeledMetrics(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	req := PlaceRequest{Trace: testTrace(t), Seed: 21, Iterations: 200, Tenant: "acme"}
	_, id := submit(t, base, req)
	waitDone(t, base, id)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if want := `dwm_serve_tenant_requests{tenant="acme",policy="anneal",outcome="accepted"}`; !strings.Contains(out, want) {
		t.Errorf("exposition missing %s in:\n%s", want, out)
	}
	if want := `dwm_serve_tenant_wall_ms_count{tenant="acme"}`; !strings.Contains(out, want) {
		t.Errorf("exposition missing %s", want)
	}
	if want := `# {trace_id="` + RequestTrace(req).TraceID + `"}`; !strings.Contains(out, want) {
		t.Errorf("no exemplar with the request's trace ID %s in exposition", RequestTrace(req).TraceID)
	}
	if err := obs.LintExpositionOpts(strings.NewReader(out), obs.LintOptions{MaxSeriesPerMetric: obs.DefaultMaxSeries + 1}); err != nil {
		t.Fatalf("labeled exposition fails promlint: %v", err)
	}
}

// Tenant attribution must never enter the request's identity: the same
// computation from two tenants is one cache entry, one trace, one result.
func TestTenantExcludedFromIdentity(t *testing.T) {
	tr := testTrace(t)
	a := PlaceRequest{Trace: tr, Seed: 5, Tenant: "alpha"}
	b := PlaceRequest{Trace: tr, Seed: 5, Tenant: "beta"}
	if RequestKey(a) != RequestKey(b) {
		t.Fatal("tenant changed the request identity key")
	}
	if RequestTrace(a) != RequestTrace(b) {
		t.Fatal("tenant changed the derived trace")
	}
}
