package serve

// This file is the durability layer: the write-ahead journal record
// schema, the request-identity digest, and journal replay. Like job.go
// and stream.go it is pure — no clock reads, no goroutines; the
// handlers in server.go decide when to journal, this file decides what
// a record means.
//
// Schema and invariants (DESIGN.md §15):
//
//   - job.accept is journaled BEFORE the 202 leaves the server. An
//     acknowledged job therefore survives a crash; replay re-enqueues
//     it and the worker re-derives the result — byte-identical to an
//     uninterrupted run, because a job's result is a pure function of
//     its request. The journal never needs to capture search state.
//   - job.ckpt records the best-so-far placement on the checkpoint
//     cadence. It does not influence the recovered search (that would
//     break byte-identity); it pre-seeds the recovered job's best-so-
//     far, so a job cancelled right after recovery still returns at
//     least its pre-crash best.
//   - job.done / job.fail capture the terminal state so finished jobs
//     are served after a restart without re-running. The stored bytes
//     ARE the derived bytes — materialized determinism, same stance as
//     placecache.
//   - stream.create / stream.append are journaled BEFORE they are
//     applied to the session. A crash between journal and apply
//     re-applies on replay (at-least-once for unacknowledged work); an
//     append the session rejected live (400) is re-rejected identically
//     on replay and skipped. Replay order equals apply order because
//     the per-stream lock covers journal+apply as one critical section.
//   - stream.delete tombstones the stream: replay drops the session
//     entirely, including any append records a racing handler journaled
//     after the tombstone — a deleted stream can never come back as an
//     orphan.
//
// Unknown record types and undecodable payloads are counted and
// skipped, so a journal written by a newer build replays on an older
// one instead of wedging recovery.

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/wal"
)

// Journal record types.
const (
	recJobAccept     = "job.accept"
	recJobCheckpoint = "job.ckpt"
	recJobDone       = "job.done"
	recJobFailed     = "job.fail"
	recStreamCreate  = "stream.create"
	recStreamAppend  = "stream.append"
	recStreamDelete  = "stream.delete"
)

// Replay-side metrics (the wal's own serve.wal.appends / fsync_ms /
// torn_truncations / quarantines series are registered by the log
// itself under its metrics prefix).
var (
	obsReplayedJobs    = obs.GetCounter("serve.wal.replayed_jobs")
	obsReplayedStreams = obs.GetCounter("serve.wal.replayed_streams")
	obsRequeuedJobs    = obs.GetCounter("serve.wal.requeued_jobs")
	obsRecordSkips     = obs.GetCounter("serve.wal.record_skips")
	obsJournalErrors   = obs.GetCounter("serve.wal.journal_errors")
	obsDeduped         = obs.GetCounter("serve.jobs.deduped")
)

// journalRecord is the JSON payload of one wal record. Exactly the
// fields for the record's type are populated.
type journalRecord struct {
	T  string `json:"t"`
	ID string `json:"id"`
	// job.accept / stream.create carry the full request, so replay can
	// re-derive everything else.
	Req    *PlaceRequest  `json:"req,omitempty"`
	Stream *StreamRequest `json:"stream,omitempty"`
	// job.accept also carries the job's trace context in traceparent wire
	// form, so a journal-recovered job keeps answering polls with the
	// trace ID the original caller is following. Older journals lack the
	// field; replay falls back to the deterministic derivation
	// (RequestTrace), which matches what an uninstrumented caller got.
	Trace string `json:"trace,omitempty"`
	// job.ckpt carries the improved best-so-far.
	Placement []int `json:"placement,omitempty"`
	Cost      int64 `json:"cost,omitempty"`
	// job.done / job.fail carry the terminal state.
	Result   *Result `json:"result,omitempty"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Err      string  `json:"err,omitempty"`
	// stream.append carries the batch.
	Accesses []int `json:"accesses,omitempty"`
}

// journal wraps the wal.Log with the record schema. A nil journal (no
// -journal flag) accepts every append as a no-op, so call sites stay
// unconditional.
type journal struct {
	log *wal.Log
}

// append marshals and commits one record, under a span so the WAL
// fsync shows up in the caller's trace (ctx carries the request's
// TraceContext; the span machinery is inert and clock reads stay inside
// internal/obs, so this file remains pure). Errors are returned for the
// caller to decide: acceptance paths refuse the request (durability
// unavailable = not accepted), completion paths degrade (the work is
// done; replay will re-derive it).
func (jl *journal) append(ctx context.Context, rec journalRecord) error {
	if jl == nil || jl.log == nil {
		return nil
	}
	_, span := obs.StartSpan(ctx, "serve.wal.append")
	defer span.End()
	span.SetAttr("type", rec.T).SetAttr("id", rec.ID)
	payload, err := json.Marshal(rec)
	if err != nil {
		obsJournalErrors.Inc()
		span.SetAttr("failed", true)
		return fmt.Errorf("journal: marshal %s: %w", rec.T, err)
	}
	if err := jl.log.Append(payload); err != nil {
		obsJournalErrors.Inc()
		span.SetAttr("failed", true)
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// RequestKey returns the deterministic identity of a placement request:
// a digest over every field that determines the result. Two requests
// with equal keys are the same computation, so the key doubles as the
// idempotency token (PlaceRequest.ClientKey) and as the seed for the
// 429 Retry-After jitter.
func RequestKey(req PlaceRequest) string {
	return fmt.Sprintf("%016x", requestDigest(req))
}

// RequestTrace derives the deterministic TraceContext for a request
// that arrived without a traceparent header: a pure function of the
// request's identity key, so the same request always carries the same
// trace ID — an idempotent resubmission, a journal-replayed recovery,
// and the client-side load generator all compute the identical ID
// without coordinating. The serve client uses the same derivation when
// it injects the header, so client- and server-side spans of one
// request agree even before the first response round-trips.
func RequestTrace(req PlaceRequest) obs.TraceContext {
	return obs.DeriveTraceContext("place/" + RequestKey(req))
}

// requestDigest is RequestKey's raw form: FNV-64a over the identity
// fields with length framing, so field boundaries cannot alias.
func requestDigest(req PlaceRequest) uint64 {
	h := fnv.New64a()
	field := func(s string) {
		fmt.Fprintf(h, "%d:", len(s))
		h.Write([]byte(s))
	}
	field(req.Trace)
	field(req.Policy)
	field(strconv.FormatInt(req.Seed, 10))
	field(strconv.Itoa(req.Iterations))
	field(strconv.Itoa(req.Restarts))
	field(strconv.FormatInt(req.DeadlineMS, 10))
	field(req.Resume)
	return h.Sum64()
}

// recoveredJob is one job reconstructed from the journal.
type recoveredJob struct {
	id       string
	req      PlaceRequest
	trace    string // traceparent wire form from job.accept, may be empty
	ckpt     []int
	ckptCost int64
	result   *Result
	cacheHit bool
	errMsg   string
}

// traceContext resolves the recovered job's trace identity: the
// journaled traceparent when present and well-formed, else the
// deterministic derivation from the request.
func (r *recoveredJob) traceContext() obs.TraceContext {
	if tc, ok := obs.ParseTraceParent(r.trace); ok {
		return tc
	}
	return RequestTrace(r.req)
}

// terminal reports whether the job reached a journaled end state.
func (r *recoveredJob) terminal() bool { return r.result != nil || r.errMsg != "" }

// recoveredStream is one streaming session reconstructed from the
// journal: its create request plus every journaled batch, in journal
// (= apply) order.
type recoveredStream struct {
	id      string
	req     StreamRequest
	appends [][]int
	deleted bool
}

// replayState is everything the journal knows, in arrival order.
type replayState struct {
	jobs        map[string]*recoveredJob
	jobOrder    []string
	streams     map[string]*recoveredStream
	streamOrder []string
	// maxJobSeq / maxStreamSeq resume the ID counters past every ID the
	// journal has ever issued, so recovered and fresh jobs never collide.
	maxJobSeq    int64
	maxStreamSeq int64
}

// idSeq extracts the numeric suffix of "job-000042" / "stream-000007"
// style IDs; 0 for foreign formats.
func idSeq(id string) int64 {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(id[i+1:], 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// replayJournal folds every committed record into a replayState.
// Individual records never abort the replay — a record that does not
// decode or references an unknown job is counted and skipped — but a
// storage-level replay error is returned (the journal itself is
// unreadable, which Open's repair should have prevented).
func replayJournal(log *wal.Log) (*replayState, error) {
	st := &replayState{
		jobs:    make(map[string]*recoveredJob),
		streams: make(map[string]*recoveredStream),
	}
	err := log.Replay(func(payload []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			obsRecordSkips.Inc()
			return nil
		}
		st.apply(rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// apply folds one record into the state.
func (st *replayState) apply(rec journalRecord) {
	switch rec.T {
	case recJobAccept:
		if rec.Req == nil || rec.ID == "" {
			obsRecordSkips.Inc()
			return
		}
		if _, ok := st.jobs[rec.ID]; ok {
			obsRecordSkips.Inc()
			return
		}
		st.jobs[rec.ID] = &recoveredJob{id: rec.ID, req: *rec.Req, trace: rec.Trace}
		st.jobOrder = append(st.jobOrder, rec.ID)
		if n := idSeq(rec.ID); n > st.maxJobSeq {
			st.maxJobSeq = n
		}
	case recJobCheckpoint:
		r, ok := st.jobs[rec.ID]
		if !ok || rec.Placement == nil {
			obsRecordSkips.Inc()
			return
		}
		if r.ckpt == nil || rec.Cost < r.ckptCost {
			r.ckpt, r.ckptCost = rec.Placement, rec.Cost
		}
	case recJobDone:
		r, ok := st.jobs[rec.ID]
		if !ok || rec.Result == nil {
			obsRecordSkips.Inc()
			return
		}
		r.result, r.cacheHit, r.errMsg = rec.Result, rec.CacheHit, ""
	case recJobFailed:
		r, ok := st.jobs[rec.ID]
		if !ok || rec.Err == "" {
			obsRecordSkips.Inc()
			return
		}
		r.errMsg, r.result = rec.Err, nil
	case recStreamCreate:
		if rec.Stream == nil || rec.ID == "" {
			obsRecordSkips.Inc()
			return
		}
		if _, ok := st.streams[rec.ID]; ok {
			obsRecordSkips.Inc()
			return
		}
		st.streams[rec.ID] = &recoveredStream{id: rec.ID, req: *rec.Stream}
		st.streamOrder = append(st.streamOrder, rec.ID)
		if n := idSeq(rec.ID); n > st.maxStreamSeq {
			st.maxStreamSeq = n
		}
	case recStreamAppend:
		r, ok := st.streams[rec.ID]
		if !ok || r.deleted || len(rec.Accesses) == 0 {
			// Appends racing a delete land after the tombstone; they are
			// dropped here so a deleted stream can never be resurrected.
			obsRecordSkips.Inc()
			return
		}
		r.appends = append(r.appends, rec.Accesses)
	case recStreamDelete:
		r, ok := st.streams[rec.ID]
		if !ok {
			obsRecordSkips.Inc()
			return
		}
		r.deleted = true
	default:
		obsRecordSkips.Inc()
	}
}
