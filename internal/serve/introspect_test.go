package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// mustTrace decodes the shared test workload.
func mustTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.Decode(strings.NewReader(testTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// getEvents drains GET /debug/events.
func getEvents(t *testing.T, base string) eventsResponse {
	t.Helper()
	resp, err := http.Get(base + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/events: status %d", resp.StatusCode)
	}
	var ev eventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestDebugEvents(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1, EventBuffer: 4096})
	t.Cleanup(obs.DisableTracing)
	obs.DrainSpans() // discard spans from earlier tests in this process

	_, id := submit(t, base, PlaceRequest{Trace: testTrace(t), Seed: 3, Iterations: 5000})
	waitDone(t, base, id)

	ev := getEvents(t, base)
	if !ev.Enabled {
		t.Fatal("events endpoint reports tracing disabled")
	}
	names := make(map[string]int)
	for _, sp := range ev.Spans {
		names[sp.Name]++
		if sp.DurNS < 0 {
			t.Errorf("span %s has negative duration %d", sp.Name, sp.DurNS)
		}
	}
	for _, want := range []string{"serve.job.run", "core.anneal.chain", "trace.decode"} {
		if names[want] == 0 {
			t.Errorf("no %q span in /debug/events drain; got %v", want, names)
		}
	}

	// Draining consumes: an immediate second drain is empty.
	if again := getEvents(t, base); len(again.Spans) != 0 {
		t.Errorf("second drain returned %d spans, want 0", len(again.Spans))
	}
}

func TestDebugEventsDisabled(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1}) // EventBuffer unset
	if obs.TracingEnabled() {
		t.Skip("tracing enabled elsewhere in the process")
	}
	ev := getEvents(t, base)
	if ev.Enabled {
		t.Error("tracing reported enabled without EventBuffer")
	}
	if len(ev.Spans) != 0 {
		t.Errorf("disabled tracer returned %d spans", len(ev.Spans))
	}
}

func TestPprofEndpoints(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

func TestJobProgress(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	// Enough iterations for several checkpoint-cadence reports
	// (CheckpointEvery defaults to 4096), two restart chains.
	const iters = 50_000
	_, id := submit(t, base, PlaceRequest{Trace: testTrace(t), Seed: 11, Iterations: iters, Restarts: 2})
	js := waitDone(t, base, id)
	if js.Status != statusDone {
		t.Fatalf("job failed: %+v", js)
	}
	p := js.Progress
	if p == nil {
		t.Fatal("finished annealing job has no progress block")
	}
	if p.Chains != 2 {
		t.Errorf("Chains = %d, want 2", p.Chains)
	}
	// The final report of each chain is cumulative, so the sum is exactly
	// the total proposal budget.
	if p.Proposals != 2*iters {
		t.Errorf("Proposals = %d, want %d", p.Proposals, 2*iters)
	}
	if p.Accepted < 0 || p.Accepted > p.Proposals {
		t.Errorf("Accepted = %d outside [0, %d]", p.Accepted, p.Proposals)
	}
	if js.Result == nil || p.BestCost != js.Result.Cost {
		t.Errorf("BestCost = %d, result cost = %+v; want equal", p.BestCost, js.Result)
	}
	if p.CheckpointAgeMS < 0 {
		t.Errorf("CheckpointAgeMS = %d, want >= 0 (start placement is always checkpointed)", p.CheckpointAgeMS)
	}

	// Progress observation is inert: the same request without restarts
	// must reproduce the single-chain placement byte-for-byte. (The
	// determinism smoke proves the tracing side process-wide; this pins
	// the progress hook specifically.)
	_, id2 := submit(t, base, PlaceRequest{Trace: testTrace(t), Seed: 11, Iterations: iters, Restarts: 2})
	js2 := waitDone(t, base, id2)
	if js2.Result == nil || js.Result == nil {
		t.Fatal("missing results")
	}
	if js2.Result.Cost != js.Result.Cost {
		t.Errorf("repeat submission cost %d != %d", js2.Result.Cost, js.Result.Cost)
	}
	for i := range js.Result.Placement {
		if js.Result.Placement[i] != js2.Result.Placement[i] {
			t.Fatalf("placement diverged at item %d", i)
		}
	}
}

func TestJobProgressQueuedJobHasNone(t *testing.T) {
	j := &job{id: "job-000001", tr: mustTrace(t), status: statusQueued}
	st := j.snapshot(time.Now())
	if st.Progress != nil {
		t.Errorf("queued job has progress block: %+v", st.Progress)
	}
}
