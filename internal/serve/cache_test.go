package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/placecache"
	"repro/internal/trace"
	"repro/internal/workload"
)

// annealCounters samples the chain/iteration counters that prove (or
// disprove) that an anneal ran.
func annealCounters() (chains, iters int64) {
	return obs.GetCounter("core.anneal.chains").Value(),
		obs.GetCounter("core.anneal.iterations").Value()
}

func encodeTrace(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	var b bytes.Buffer
	if err := trace.Encode(&b, tr); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestCacheExactHitSkipsAnneal is the in-process twin of cache-smoke:
// the duplicate of a finished request must come back as a completed job
// with cache_hit set, a byte-identical result, and zero additional
// annealing work.
func TestCacheExactHitSkipsAnneal(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	req := PlaceRequest{Trace: testTrace(t), Seed: 17, Iterations: 20000}

	_, id1 := submit(t, base, req)
	first := waitDone(t, base, id1)
	if first.Status != statusDone {
		t.Fatalf("cold job: %s (%s)", first.Status, first.Error)
	}
	if first.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}

	chains0, iters0 := annealCounters()
	code, id2 := submit(t, base, req)
	if code != http.StatusAccepted {
		t.Fatalf("duplicate submission: status %d", code)
	}
	second := waitDone(t, base, id2)
	if !second.CacheHit {
		t.Fatal("duplicate submission was not served from the cache")
	}
	if second.Status != statusDone || second.Result == nil {
		t.Fatalf("hit job not done: %+v", second)
	}
	if chains1, iters1 := annealCounters(); chains1 != chains0 || iters1 != iters0 {
		t.Fatalf("cache hit ran the annealer: chains %d->%d, iterations %d->%d",
			chains0, chains1, iters0, iters1)
	}
	if second.Result.Cost != first.Result.Cost ||
		fmt.Sprint(second.Result.Placement) != fmt.Sprint(first.Result.Placement) {
		t.Fatal("cache hit returned a different result than the cold run")
	}
	if second.Result.BaselineCost != first.Result.BaselineCost {
		t.Fatal("cache hit returned a different baseline cost")
	}
}

// TestCacheRenumberedHit drives the canonicalization path end to end: a
// trace with every item relabeled is the same placement problem, so it
// must hit the cache and come back with the same objective value.
func TestCacheRenumberedHit(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	orig := workload.Zipf(48, 4000, 1.2, 7)
	req := PlaceRequest{Trace: encodeTrace(t, orig), Seed: 23, Iterations: 20000}
	_, id1 := submit(t, base, req)
	first := waitDone(t, base, id1)
	if first.Status != statusDone {
		t.Fatalf("cold job: %s (%s)", first.Status, first.Error)
	}

	perm := rand.New(rand.NewSource(9)).Perm(orig.NumItems)
	renumbered := trace.New(orig.Name, orig.NumItems)
	for _, a := range orig.Accesses {
		if a.Write {
			renumbered.Write(perm[a.Item])
		} else {
			renumbered.Read(perm[a.Item])
		}
	}
	chains0, _ := annealCounters()
	_, id2 := submit(t, base, PlaceRequest{Trace: encodeTrace(t, renumbered), Seed: 23, Iterations: 20000})
	second := waitDone(t, base, id2)
	if !second.CacheHit {
		t.Fatal("renumbered submission missed the cache")
	}
	if chains1, _ := annealCounters(); chains1 != chains0 {
		t.Fatal("renumbered hit ran the annealer")
	}
	checkPlacement(t, second, orig.NumItems)
	if second.Result.Cost != first.Result.Cost {
		t.Fatalf("renumbered hit cost %d, original %d", second.Result.Cost, first.Result.Cost)
	}
}

// TestCacheWarmstart exercises the near-hit path: same structure class
// (degree profile) but a different exact key must run the annealer,
// warm-started, and still end at or below the baseline.
func TestCacheWarmstart(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1})
	req := PlaceRequest{Trace: testTrace(t), Seed: 3, Iterations: 20000}
	_, id1 := submit(t, base, req)
	if first := waitDone(t, base, id1); first.Status != statusDone {
		t.Fatalf("cold job: %s (%s)", first.Status, first.Error)
	}

	warm0 := obs.GetCounter("serve.cache.warmstarts").Value()
	// Same trace, different seed: same fingerprint and profile, different
	// exact key — a warm-startable miss.
	req2 := PlaceRequest{Trace: testTrace(t), Seed: 4, Iterations: 20000}
	_, id2 := submit(t, base, req2)
	second := waitDone(t, base, id2)
	if second.CacheHit {
		t.Fatal("different seed produced an exact hit")
	}
	if second.Status != statusDone {
		t.Fatalf("warm job: %s (%s)", second.Status, second.Error)
	}
	checkPlacement(t, second, 48)
	if got := obs.GetCounter("serve.cache.warmstarts").Value(); got != warm0+1 {
		t.Fatalf("warmstart counter %d -> %d, want +1", warm0, got)
	}
}

// TestCacheWarmstartRejectedNotCounted is the regression test for the
// overcounting bug: Nearest used to bump the warm-hit counter when a
// candidate was merely *found*, but the service only applies a warm start
// when it beats the policy's own start. A deliberately bad near-match
// must therefore leave both the service and cache counters untouched.
func TestCacheWarmstartRejectedNotCounted(t *testing.T) {
	s, base := startServer(t, Options{Workers: 1})
	tr, err := trace.Decode(strings.NewReader(testTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	cn := g.Freeze().Canon()
	propose, _, err := core.Propose(tr, g)
	if err != nil {
		t.Fatal(err)
	}
	proposeCost, err := cost.Linear(g, propose)
	if err != nil {
		t.Fatal(err)
	}
	// Craft a placement strictly worse than the start the policy would
	// pick on its own, and plant it as the profile's freshest entry.
	rng := rand.New(rand.NewSource(77))
	var bad layout.Placement
	for {
		p := layout.Placement(rng.Perm(tr.NumItems))
		if c, err := cost.Linear(g, p); err == nil && c > proposeCost {
			bad = p
			break
		}
	}
	badCost, err := cost.Linear(g, bad)
	if err != nil {
		t.Fatal(err)
	}
	s.cache.Put(placecache.Key{
		FP:     cn.FP,
		Policy: servePolicyKey,
		Device: serveDevice,
		Seed:   12345, // never matches any effective seed below
	}, placecache.Entry{
		Placement: placecache.Canonize(bad, cn.Labeling),
		Cost:      badCost,
		Profile:   cn.Profile,
	})

	warm0 := obs.GetCounter("serve.cache.warmstarts").Value()
	cacheWarm0 := obs.GetCounter("placecache.warm_hits").Value()
	_, id := submit(t, base, PlaceRequest{Trace: testTrace(t), Seed: 6, Iterations: 20000})
	st := waitDone(t, base, id)
	if st.Status != statusDone {
		t.Fatalf("job: %s (%s)", st.Status, st.Error)
	}
	if st.CacheHit {
		t.Fatal("planted entry produced an exact hit")
	}
	if got := obs.GetCounter("serve.cache.warmstarts").Value(); got != warm0 {
		t.Fatalf("rejected warm candidate was counted: %d -> %d", warm0, got)
	}
	if got := obs.GetCounter("placecache.warm_hits").Value(); got != cacheWarm0 {
		t.Fatalf("rejected warm candidate bumped the cache counter: %d -> %d", cacheWarm0, got)
	}
}

// TestCacheDisabled pins the opt-out: with DisableCache every duplicate
// runs cold and cache_hit never appears.
func TestCacheDisabled(t *testing.T) {
	_, base := startServer(t, Options{Workers: 1, DisableCache: true})
	req := PlaceRequest{Trace: testTrace(t), Seed: 17, Iterations: 5000}
	_, id1 := submit(t, base, req)
	first := waitDone(t, base, id1)

	chains0, _ := annealCounters()
	_, id2 := submit(t, base, req)
	second := waitDone(t, base, id2)
	if second.CacheHit {
		t.Fatal("cache hit despite DisableCache")
	}
	if chains1, _ := annealCounters(); chains1 == chains0 {
		t.Fatal("duplicate did not run the annealer despite DisableCache")
	}
	// Determinism holds with or without the cache.
	if fmt.Sprint(second.Result.Placement) != fmt.Sprint(first.Result.Placement) {
		t.Fatal("duplicate diverged with cache disabled")
	}
}

// TestCacheResumeBypassed pins that resume jobs neither consult nor
// populate the cache: a resumed job's start is job-local state, not a
// function of the request.
func TestCacheResumeBypassed(t *testing.T) {
	s, base := startServer(t, Options{Workers: 1})
	req := PlaceRequest{Trace: testTrace(t), Seed: 30, Iterations: 8000}
	_, id1 := submit(t, base, req)
	if first := waitDone(t, base, id1); first.Status != statusDone {
		t.Fatalf("cold job: %s (%s)", first.Status, first.Error)
	}
	entries0 := s.cache.Len()
	resumeReq := req
	resumeReq.Resume = id1
	_, id2 := submit(t, base, resumeReq)
	second := waitDone(t, base, id2)
	if second.CacheHit {
		t.Fatal("resume request was served from the cache")
	}
	if second.Status != statusDone {
		t.Fatalf("resume job: %s (%s)", second.Status, second.Error)
	}
	if s.cache.Len() != entries0 {
		t.Fatalf("resume job stored a cache entry: %d -> %d", entries0, s.cache.Len())
	}
}
