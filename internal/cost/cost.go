// Package cost evaluates the shift cost of placements analytically,
// without instantiating a device.
//
// Three evaluators cover the modeling levels used in the paper-style
// study:
//
//   - Linear: the graph (MinLA) objective Σ w(u,v)·|pos(u)-pos(v)|. For a
//     single-port tape whose head rests where the last access left it,
//     this equals the exact shift count of serving the trace, minus the
//     initial seek.
//   - SinglePort / MultiPort: exact head simulation on one tape, including
//     the initial seek from the port's home position.
//   - MultiTape: exact per-tape head simulation on a multi-tape device.
//
// The Evaluator type provides O(degree) incremental re-evaluation of item
// swaps under the Linear objective, which the local-search and annealing
// optimizers depend on.
package cost

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/layout"
)

// Linear returns the MinLA objective of a placement on the access
// transition graph: Σ over edges w(u,v) * |pos(u)-pos(v)|. It evaluates
// on the graph's frozen CSR view (cached between mutations), so repeated
// scoring of the same graph — the pattern of every refinement loop — runs
// over flat arrays.
func Linear(g *graph.Graph, p layout.Placement) (int64, error) {
	return LinearCSR(g.Freeze(), p)
}

// LinearCSR is Linear on an already-frozen graph.
func LinearCSR(c *graph.CSR, p layout.Placement) (int64, error) {
	if len(p) != c.N() {
		return 0, fmt.Errorf("cost: placement covers %d items, graph has %d", len(p), c.N())
	}
	var total int64
	for u := 0; u < c.N(); u++ {
		pu := p[u]
		cols, ws := c.Row(u)
		for i, v := range cols {
			total += ws[i] * int64(abs(pu-p[v]))
		}
	}
	return total / 2, nil // every edge counted from both endpoints
}

// SinglePort returns the exact shift count of serving seq on a single
// tape with one port at position port, with the head starting aligned at
// the port (offset zero) and resting where each access leaves it.
func SinglePort(seq []int, p layout.Placement, port int) (int64, error) {
	return MultiPort(seq, p, []int{port}, maxSlot(p)+1)
}

// MultiPort returns the exact shift count of serving seq on a single tape
// of tapeLen slots with the given port positions, starting from offset
// zero and choosing the nearest port per access (the same greedy policy
// the device model implements).
func MultiPort(seq []int, p layout.Placement, ports []int, tapeLen int) (int64, error) {
	if err := p.Validate(tapeLen); err != nil {
		return 0, err
	}
	if len(ports) == 0 {
		return 0, fmt.Errorf("cost: no ports")
	}
	for i, q := range ports {
		if q < 0 || q >= tapeLen {
			return 0, fmt.Errorf("cost: port %d at %d outside [0,%d)", i, q, tapeLen)
		}
	}
	var total int64
	offset := 0
	for i, item := range seq {
		if item < 0 || item >= len(p) {
			return 0, fmt.Errorf("cost: access %d references item %d outside [0,%d)", i, item, len(p))
		}
		slot := p[item]
		best := -1
		for _, q := range ports {
			d := abs(slot - q - offset)
			if best == -1 || d < best {
				best = d
			}
		}
		// Recompute the chosen offset (nearest port).
		for _, q := range ports {
			if abs(slot-q-offset) == best {
				offset = slot - q
				break
			}
		}
		total += int64(best)
	}
	return total, nil
}

// MultiTapeBreakdown returns the per-tape shift counts of serving seq,
// under the same model as MultiTape. The per-tape count is the wire's
// shift wear: every shift stresses every domain wall on that wire, so
// tape-level shift totals are the wear-leveling metric for DWM arrays.
func MultiTapeBreakdown(seq []int, mp layout.MultiPlacement, tapes, tapeLen int, ports []int) ([]int64, error) {
	if err := mp.Validate(tapes, tapeLen); err != nil {
		return nil, err
	}
	if len(ports) == 0 {
		return nil, fmt.Errorf("cost: no ports")
	}
	for i, q := range ports {
		if q < 0 || q >= tapeLen {
			return nil, fmt.Errorf("cost: port %d at %d outside [0,%d)", i, q, tapeLen)
		}
	}
	offsets := make([]int, tapes)
	perTape := make([]int64, tapes)
	for i, item := range seq {
		if item < 0 || item >= mp.Items() {
			return nil, fmt.Errorf("cost: access %d references item %d outside [0,%d)", i, item, mp.Items())
		}
		tp, slot := mp.Tape[item], mp.Slot[item]
		best := -1
		for _, q := range ports {
			d := abs(slot - q - offsets[tp])
			if best == -1 || d < best {
				best = d
			}
		}
		for _, q := range ports {
			if abs(slot-q-offsets[tp]) == best {
				offsets[tp] = slot - q
				break
			}
		}
		perTape[tp] += int64(best)
	}
	return perTape, nil
}

// MultiTape returns the exact shift count of serving seq on a device with
// the given number of tapes of tapeLen slots each and the given per-tape
// port positions. Each tape keeps its own head offset; cross-tape
// transitions cost nothing by themselves.
func MultiTape(seq []int, mp layout.MultiPlacement, tapes, tapeLen int, ports []int) (int64, error) {
	if err := mp.Validate(tapes, tapeLen); err != nil {
		return 0, err
	}
	if len(ports) == 0 {
		return 0, fmt.Errorf("cost: no ports")
	}
	for i, q := range ports {
		if q < 0 || q >= tapeLen {
			return 0, fmt.Errorf("cost: port %d at %d outside [0,%d)", i, q, tapeLen)
		}
	}
	offsets := make([]int, tapes)
	var total int64
	for i, item := range seq {
		if item < 0 || item >= mp.Items() {
			return 0, fmt.Errorf("cost: access %d references item %d outside [0,%d)", i, item, mp.Items())
		}
		tp, slot := mp.Tape[item], mp.Slot[item]
		best := -1
		for _, q := range ports {
			d := abs(slot - q - offsets[tp])
			if best == -1 || d < best {
				best = d
			}
		}
		for _, q := range ports {
			if abs(slot-q-offsets[tp]) == best {
				offsets[tp] = slot - q
				break
			}
		}
		total += int64(best)
	}
	return total, nil
}

func maxSlot(p layout.Placement) int {
	m := 0
	for _, s := range p {
		if s > m {
			m = s
		}
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
