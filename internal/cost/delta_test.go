package cost

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

// randomEvalGraph builds a random trace-derived graph with n items.
func randomEvalGraph(t testing.TB, rng *rand.Rand, n, accesses int) *graph.Graph {
	t.Helper()
	tr := trace.New("delta-test", n)
	for i := 0; i < accesses; i++ {
		tr.Read(rng.Intn(n))
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomPlacement(rng *rand.Rand, n int) layout.Placement {
	p := layout.Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// TestEvaluatorTracksGraphDeltas is the satellite property test: a stream
// of randomized graph delta batches — edge creation, weight increments,
// and deletion via weight reaching zero — applied through
// graph.ApplyDeltas + Evaluator.ApplyGraphDeltas must keep the evaluator
// in exact agreement with a cold FromTrace-style rebuild
// (Freeze + LinearCSR from scratch), as checked by Verify after every
// batch and by an independent cold evaluator at the end.
func TestEvaluatorTracksGraphDeltas(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		rng := rand.New(rand.NewSource(int64(7000 + n)))
		g := randomEvalGraph(t, rng, n, 10*n)
		e, err := NewEvaluator(g, randomPlacement(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 30; round++ {
			// Interleave placement moves with graph mutation, as the
			// streaming session does.
			e.Swap(rng.Intn(n), rng.Intn(n))
			batch := make([]graph.Delta, 0, 6)
			pend := make(map[[2]int]int64)
			for len(batch) < 1+rng.Intn(6) {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				key := [2]int{u, v}
				cur, seen := pend[key]
				if !seen {
					cur = g.Weight(u, v)
				}
				var w int64
				switch rng.Intn(3) {
				case 0: // deletion via weight reaching zero
					w = -cur
					if w == 0 {
						w = 2
					}
				default:
					w = int64(rng.Intn(4) + 1)
				}
				pend[key] = cur + w
				batch = append(batch, graph.Delta{U: u, V: v, W: w})
			}
			if err := g.ApplyDeltas(batch); err != nil {
				t.Fatalf("round %d: ApplyDeltas: %v", round, err)
			}
			if err := e.ApplyGraphDeltas(g.Freeze(), batch); err != nil {
				t.Fatalf("round %d: ApplyGraphDeltas: %v", round, err)
			}
			if err := e.Verify(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		// Final cross-check against a completely cold evaluator on the
		// same end state.
		cold, err := NewEvaluatorCSR(g.Freeze(), e.Placement())
		if err != nil {
			t.Fatal(err)
		}
		if cold.Cost() != e.Cost() {
			t.Fatalf("n=%d: incremental cost %d != cold rebuild %d", n, e.Cost(), cold.Cost())
		}
	}
}

// TestRotateDeltaMatchesRecompute checks RotateDelta/Rotate against a
// from-scratch cost recompute across random rotation sets of varying
// size, including sets with adjacent and entangled items.
func TestRotateDeltaMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 40
	g := randomEvalGraph(t, rng, n, 600)
	e, err := NewEvaluator(g, randomPlacement(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(6)
		perm := rng.Perm(n)[:k]
		want := e.Cost() + e.RotateDelta(perm)
		got := e.Rotate(perm)
		if got != want {
			t.Fatalf("trial %d: Rotate returned %d, RotateDelta predicted %d", trial, got, want)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Placement and inverse must stay consistent.
		p := e.Placement()
		for item, slot := range p {
			if e.ItemAt(slot) != item {
				t.Fatalf("trial %d: inv[%d] = %d, want %d", trial, slot, e.ItemAt(slot), item)
			}
		}
	}
}

// TestMoveDeltaMatchesRecompute checks the insertion move against a
// recompute: moving an item to an arbitrary slot shifts the span between
// old and new slot by one and must leave a valid permutation with the
// predicted cost.
func TestMoveDeltaMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	n := 32
	g := randomEvalGraph(t, rng, n, 500)
	e, err := NewEvaluator(g, randomPlacement(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		u, slot := rng.Intn(n), rng.Intn(n)
		before := e.Placement()
		want := e.Cost() + e.MoveDelta(u, slot)
		got := e.Move(u, slot)
		if got != want {
			t.Fatalf("trial %d: Move returned %d, MoveDelta predicted %d", trial, got, want)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		after := e.Placement()
		if after[u] != slot {
			t.Fatalf("trial %d: item %d at slot %d, want %d", trial, u, after[u], slot)
		}
		if err := after.Validate(n); err != nil {
			t.Fatalf("trial %d: move broke the permutation: %v", trial, err)
		}
		// Items outside the shifted span must not move.
		lo, hi := before[u], slot
		if lo > hi {
			lo, hi = hi, lo
		}
		for item, s := range before {
			if item != u && (s < lo || s > hi) && after[item] != s {
				t.Fatalf("trial %d: item %d outside span moved %d->%d", trial, item, s, after[item])
			}
		}
	}
}

// TestRotateDeltaTrivialSets pins the degenerate cases: empty and
// single-item rotations are free, and a 2-cycle equals a swap.
func TestRotateDeltaTrivialSets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 16
	g := randomEvalGraph(t, rng, n, 200)
	e, err := NewEvaluator(g, layout.Identity(n))
	if err != nil {
		t.Fatal(err)
	}
	if d := e.RotateDelta(nil); d != 0 {
		t.Fatalf("RotateDelta(nil) = %d, want 0", d)
	}
	if d := e.RotateDelta([]int{3}); d != 0 {
		t.Fatalf("RotateDelta(single) = %d, want 0", d)
	}
	for trial := 0; trial < 50; trial++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if rot, swp := e.RotateDelta([]int{u, v}), e.SwapDelta(u, v); rot != swp {
			t.Fatalf("RotateDelta({%d,%d}) = %d, SwapDelta = %d", u, v, rot, swp)
		}
	}
	// MoveDelta to the item's own slot is free.
	if d := e.MoveDelta(5, e.Placement()[5]); d != 0 {
		t.Fatalf("MoveDelta to own slot = %d, want 0", d)
	}
}

// TestEdgeDeltaUnderMutation pins EdgeDelta directly: the cost moves by
// w·|pos(u)-pos(v)| per increment and Verify agrees once the graph
// actually changes.
func TestEdgeDeltaUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 12
	g := randomEvalGraph(t, rng, n, 150)
	e, err := NewEvaluator(g, randomPlacement(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	u, v := 2, 9
	p := e.Placement()
	gap := p[u] - p[v]
	if gap < 0 {
		gap = -gap
	}
	before := e.Cost()
	if err := g.ApplyDeltas([]graph.Delta{{U: u, V: v, W: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyGraphDeltas(g.Freeze(), []graph.Delta{{U: u, V: v, W: 5}}); err != nil {
		t.Fatal(err)
	}
	if want := before + 5*int64(gap); e.Cost() != want {
		t.Fatalf("cost after EdgeDelta = %d, want %d", e.Cost(), want)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSwapDeltaBatchMatchesSwapDelta checks the branch-light batch path
// against the reference single-proposal path across random proposals,
// including u==v no-ops and adjacent items.
func TestSwapDeltaBatchMatchesSwapDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := 48
	g := randomEvalGraph(t, rng, n, 800)
	e, err := NewEvaluator(g, randomPlacement(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	const batch = 256
	us := make([]int, batch)
	vs := make([]int, batch)
	for j := range us {
		us[j] = rng.Intn(n)
		if j%17 == 0 {
			vs[j] = us[j] // self-swap must come out zero
		} else {
			vs[j] = rng.Intn(n)
		}
	}
	var out []int64
	out = e.SwapDeltaBatch(us, vs, out)
	if len(out) != batch {
		t.Fatalf("batch returned %d deltas, want %d", len(out), batch)
	}
	for j := range us {
		if want := e.SwapDelta(us[j], vs[j]); out[j] != want {
			t.Fatalf("proposal %d (swap %d,%d): batch %d, reference %d", j, us[j], vs[j], out[j], want)
		}
	}
	// The returned slice must be reused when capacity allows.
	again := e.SwapDeltaBatch(us[:8], vs[:8], out)
	if &again[0] != &out[0] {
		t.Fatal("batch did not reuse the provided output slice")
	}
}

// BenchmarkSwapDeltaBatch gates the branch-light claim: evaluating many
// proposals through the batch path must not be slower per proposal than
// the reference SwapDelta loop it replaces.
func BenchmarkSwapDeltaBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1024
	g := randomEvalGraph(b, rng, n, 40000)
	e, err := NewEvaluator(g, layout.Identity(n))
	if err != nil {
		b.Fatal(err)
	}
	const batch = 512
	us := make([]int, batch)
	vs := make([]int, batch)
	for j := range us {
		us[j], vs[j] = rng.Intn(n), rng.Intn(n)
	}
	out := make([]int64, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = e.SwapDeltaBatch(us, vs, out)
	}
	_ = out
}

// BenchmarkSwapDeltaLoop is the reference point for the batch benchmark:
// the same proposals through the single-call path.
func BenchmarkSwapDeltaLoop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1024
	g := randomEvalGraph(b, rng, n, 40000)
	e, err := NewEvaluator(g, layout.Identity(n))
	if err != nil {
		b.Fatal(err)
	}
	const batch = 512
	us := make([]int, batch)
	vs := make([]int, batch)
	for j := range us {
		us[j], vs[j] = rng.Intn(n), rng.Intn(n)
	}
	out := make([]int64, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range us {
			out[j] = e.SwapDelta(us[j], vs[j])
		}
	}
	_ = out
}

// BenchmarkRotateDelta measures the rotation primitive at the set sizes
// the session's move neighborhood uses.
func BenchmarkRotateDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	g := randomEvalGraph(b, rng, n, 40000)
	e, err := NewEvaluator(g, layout.Identity(n))
	if err != nil {
		b.Fatal(err)
	}
	set := rng.Perm(n)[:8]
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += e.RotateDelta(set)
	}
	_ = sink
}
