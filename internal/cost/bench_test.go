package cost

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/layout"
)

// benchGraph builds a Zipf-ish random transition graph without importing
// the workload package (cost sits below it in the dependency order).
func benchGraph(b *testing.B, n, edges int) *graph.Graph {
	b.Helper()
	g, err := graph.New(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddWeight(u, v, int64(rng.Intn(16)+1))
		}
	}
	return g
}

func BenchmarkSwapDelta(b *testing.B) {
	g := benchGraph(b, 1024, 1<<15)
	ev, err := NewEvaluator(g, layout.Identity(g.N()))
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += ev.SwapDelta(i%n, (i*7+3)%n)
	}
	_ = sink
}

func BenchmarkNewEvaluator(b *testing.B) {
	g := benchGraph(b, 1024, 1<<15)
	p := layout.Identity(g.N())
	g.Freeze() // construction cost without the one-time freeze
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEvaluator(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinear(b *testing.B) {
	g := benchGraph(b, 1024, 1<<15)
	p := layout.Identity(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Linear(g, p); err != nil {
			b.Fatal(err)
		}
	}
}
