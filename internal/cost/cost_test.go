package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < n; i++ {
		g.AddWeight(i, i+1, 1)
	}
	return g
}

func TestLinearOnLine(t *testing.T) {
	g := lineGraph(t, 4)
	// Identity: each of 3 edges at distance 1.
	c, err := Linear(g, layout.Identity(4))
	if err != nil || c != 3 {
		t.Errorf("identity cost = %d, %v; want 3", c, err)
	}
	// Reversal has the same cost.
	rev := layout.Placement{3, 2, 1, 0}
	c, err = Linear(g, rev)
	if err != nil || c != 3 {
		t.Errorf("reversed cost = %d, %v; want 3", c, err)
	}
	// Interleaved placement 0,2,1,3 -> slots: item0=0,item1=2,item2=1,item3=3.
	p := layout.Placement{0, 2, 1, 3}
	c, err = Linear(g, p)
	// Edges: (0,1): |0-2|=2; (1,2): |2-1|=1; (2,3): |1-3|=2 -> 5.
	if err != nil || c != 5 {
		t.Errorf("interleaved cost = %d, %v; want 5", c, err)
	}
}

func TestLinearSizeMismatch(t *testing.T) {
	g := lineGraph(t, 4)
	if _, err := Linear(g, layout.Identity(3)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestSinglePortMatchesManualWalk(t *testing.T) {
	// Items 0..3 at identity slots, port at 0.
	seq := []int{2, 0, 3, 3, 1}
	c, err := SinglePort(seq, layout.Identity(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Walk: 0->2 (2), 2->0 (2), 0->3 (3), 3->3 (0), 3->1 (2) = 9.
	if c != 9 {
		t.Errorf("cost = %d, want 9", c)
	}
}

func TestSinglePortEqualsLinearPlusSeek(t *testing.T) {
	// For a single-port tape, SinglePort = Linear + initial seek.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		tr := trace.New("p", n)
		for i := 0; i < 200; i++ {
			tr.Read(rng.Intn(n))
		}
		g, err := graph.FromTrace(tr)
		if err != nil {
			return false
		}
		order := rng.Perm(n)
		p, err := layout.FromOrder(order)
		if err != nil {
			return false
		}
		port := rng.Intn(n)
		lin, err := Linear(g, p)
		if err != nil {
			return false
		}
		sp, err := SinglePort(tr.Items(), p, port)
		if err != nil {
			return false
		}
		seek := int64(abs(p[tr.Accesses[0].Item] - port))
		return sp == lin+seek
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMultiPortNeverWorseThanSinglePort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		var seq []int
		for i := 0; i < 300; i++ {
			seq = append(seq, rng.Intn(n))
		}
		p := layout.Identity(n)
		ports := []int{4, 12}
		multi, err := MultiPort(seq, p, ports, n)
		if err != nil {
			return false
		}
		single, err := MultiPort(seq, p, ports[:1], n)
		if err != nil {
			return false
		}
		return multi <= single
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMultiPortValidation(t *testing.T) {
	p := layout.Identity(4)
	if _, err := MultiPort([]int{0}, p, nil, 4); err == nil {
		t.Error("no ports accepted")
	}
	if _, err := MultiPort([]int{0}, p, []int{4}, 4); err == nil {
		t.Error("port out of range accepted")
	}
	if _, err := MultiPort([]int{7}, p, []int{0}, 4); err == nil {
		t.Error("item out of range accepted")
	}
	if _, err := MultiPort([]int{0}, layout.Placement{0, 0}, []int{0}, 4); err == nil {
		t.Error("invalid placement accepted")
	}
}

func TestMultiTapeCrossTapeTransitionsFree(t *testing.T) {
	// Two items on different tapes, both at their port slot: alternating
	// accesses cost nothing after the initial (zero) seeks.
	mp := layout.MultiPlacement{Tape: []int{0, 1}, Slot: []int{1, 1}}
	seq := []int{0, 1, 0, 1, 0, 1}
	c, err := MultiTape(seq, mp, 2, 4, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("cost = %d, want 0", c)
	}
}

func TestMultiTapeDegeneratesToMultiPort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		var seq []int
		for i := 0; i < 200; i++ {
			seq = append(seq, rng.Intn(n))
		}
		order := rng.Perm(n)
		p, err := layout.FromOrder(order)
		if err != nil {
			return false
		}
		ports := []int{3, 9}
		want, err := MultiPort(seq, p, ports, n)
		if err != nil {
			return false
		}
		got, err := MultiTape(seq, layout.SingleTape(p), 1, n, ports)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMultiTapeValidation(t *testing.T) {
	mp := layout.MultiPlacement{Tape: []int{0}, Slot: []int{0}}
	if _, err := MultiTape([]int{0}, mp, 1, 4, nil); err == nil {
		t.Error("no ports accepted")
	}
	if _, err := MultiTape([]int{0}, mp, 1, 4, []int{9}); err == nil {
		t.Error("bad port accepted")
	}
	if _, err := MultiTape([]int{3}, mp, 1, 4, []int{0}); err == nil {
		t.Error("bad item accepted")
	}
}

// Property: Linear is invariant under mirroring the placement.
func TestLinearMirrorInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		g, err := graph.New(n)
		if err != nil {
			return false
		}
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddWeight(u, v, int64(rng.Intn(5)+1))
			}
		}
		p, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		a, err := Linear(g, p)
		if err != nil {
			return false
		}
		b, err := Linear(g, p.Mirror(n))
		if err != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
