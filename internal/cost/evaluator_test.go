package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/layout"
)

func randomGraph(rng *rand.Rand, n int) *graph.Graph {
	g, err := graph.New(n)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddWeight(u, v, int64(rng.Intn(9)+1))
		}
	}
	return g
}

func TestNewEvaluatorValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 6)
	if _, err := NewEvaluator(g, layout.Placement{0, 0, 1, 2, 3, 4}); err == nil {
		t.Error("invalid placement accepted")
	}
	// A placement into more slots than vertices is rejected for the
	// evaluator (it requires a permutation).
	if _, err := NewEvaluator(g, layout.Placement{0, 1, 2, 3, 4, 9}); err == nil {
		t.Error("sparse placement accepted")
	}
}

func TestEvaluatorSwapMatchesRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		g := randomGraph(rng, n)
		p, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		e, err := NewEvaluator(g, p)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			d := e.SwapDelta(u, v)
			before := e.Cost()
			after := e.Swap(u, v)
			if after != before+d {
				return false
			}
		}
		return e.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEvaluatorSwapDeltaSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 8)
	e, err := NewEvaluator(g, layout.Identity(8))
	if err != nil {
		t.Fatal(err)
	}
	if d := e.SwapDelta(3, 3); d != 0 {
		t.Errorf("self-swap delta = %d", d)
	}
}

func TestEvaluatorPlacementIsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 5)
	e, err := NewEvaluator(g, layout.Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	p := e.Placement()
	p.Swap(0, 1)
	if err := e.Verify(); err != nil {
		t.Errorf("external mutation corrupted evaluator: %v", err)
	}
}

func TestEvaluatorSwapAdjacentItems(t *testing.T) {
	// Edge case: swapping two items connected by an edge must keep that
	// edge's contribution unchanged.
	g, err := graph.New(2)
	if err != nil {
		t.Fatal(err)
	}
	g.AddWeight(0, 1, 7)
	e, err := NewEvaluator(g, layout.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if d := e.SwapDelta(0, 1); d != 0 {
		t.Errorf("adjacent swap delta = %d, want 0", d)
	}
	e.Swap(0, 1)
	if err := e.Verify(); err != nil {
		t.Error(err)
	}
}
