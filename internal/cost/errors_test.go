package cost

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/layout"
)

// Error-path coverage for the evaluators: every malformed input must be
// rejected with an error rather than a panic or silent garbage.

func TestSinglePortErrorPaths(t *testing.T) {
	p := layout.Identity(4)
	if _, err := SinglePort([]int{9}, p, 0); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := SinglePort([]int{-1}, p, 0); err == nil {
		t.Error("negative item accepted")
	}
}

func TestMultiTapeBreakdownErrorPaths(t *testing.T) {
	mp := layout.MultiPlacement{Tape: []int{0}, Slot: []int{0}}
	if _, err := MultiTapeBreakdown([]int{0}, mp, 1, 4, nil); err == nil {
		t.Error("no ports accepted")
	}
	if _, err := MultiTapeBreakdown([]int{0}, mp, 1, 4, []int{9}); err == nil {
		t.Error("bad port accepted")
	}
	if _, err := MultiTapeBreakdown([]int{5}, mp, 1, 4, []int{0}); err == nil {
		t.Error("bad item accepted")
	}
	bad := layout.MultiPlacement{Tape: []int{5}, Slot: []int{0}}
	if _, err := MultiTapeBreakdown([]int{0}, bad, 1, 4, []int{0}); err == nil {
		t.Error("invalid placement accepted")
	}
}

func TestEvaluatorVerifyDetectsDrift(t *testing.T) {
	g, err := graph.New(3)
	if err != nil {
		t.Fatal(err)
	}
	g.AddWeight(0, 1, 2)
	e, err := NewEvaluator(g, layout.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("fresh evaluator fails verify: %v", err)
	}
	// The adjacency snapshot means later graph edits are not observed:
	// Verify must flag the divergence between the snapshot-based cost
	// and a fresh recomputation.
	g.AddWeight(1, 2, 5)
	if err := e.Verify(); err == nil {
		t.Error("Verify missed a cost drift after graph mutation")
	}
}

func TestLinearEmptyGraph(t *testing.T) {
	g, err := graph.New(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Linear(g, layout.Identity(3))
	if err != nil || c != 0 {
		t.Errorf("edgeless Linear = %d, %v", c, err)
	}
}
