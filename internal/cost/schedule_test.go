package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/layout"
)

func TestMultiPortOptimalValidation(t *testing.T) {
	p := layout.Identity(4)
	if _, err := MultiPortOptimal([]int{0}, p, nil, 4); err == nil {
		t.Error("no ports accepted")
	}
	if _, err := MultiPortOptimal([]int{0}, p, []int{9}, 4); err == nil {
		t.Error("bad port accepted")
	}
	if _, err := MultiPortOptimal([]int{7}, p, []int{0}, 4); err == nil {
		t.Error("bad item accepted")
	}
	if _, err := MultiPortOptimal([]int{0}, layout.Placement{0, 0}, []int{0}, 4); err == nil {
		t.Error("bad placement accepted")
	}
	c, err := MultiPortOptimal(nil, p, []int{0}, 4)
	if err != nil || c != 0 {
		t.Errorf("empty sequence: %d, %v", c, err)
	}
}

func TestMultiPortOptimalSinglePortEqualsGreedy(t *testing.T) {
	// With one port there is no choice: oracle == greedy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		var seq []int
		for i := 0; i < 200; i++ {
			seq = append(seq, rng.Intn(n))
		}
		p, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		port := []int{rng.Intn(n)}
		greedy, err := MultiPort(seq, p, port, n)
		if err != nil {
			return false
		}
		opt, err := MultiPortOptimal(seq, p, port, n)
		if err != nil {
			return false
		}
		return opt == greedy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMultiPortOptimalNeverWorseThanGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 4
		var seq []int
		for i := 0; i < 300; i++ {
			seq = append(seq, rng.Intn(n))
		}
		p, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		k := rng.Intn(3) + 2
		if k > n {
			k = n
		}
		ports := make([]int, 0, k)
		for _, q := range rng.Perm(n)[:k] {
			ports = append(ports, q)
		}
		greedy, err := MultiPort(seq, p, ports, n)
		if err != nil {
			return false
		}
		opt, err := MultiPortOptimal(seq, p, ports, n)
		if err != nil {
			return false
		}
		return opt <= greedy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMultiPortOptimalBeatsGreedyOnAdversarialCase(t *testing.T) {
	// Ports at 0 and 8 on a 16-slot tape. Accessing slot 4 then slot 9:
	// greedy takes slot 4 via port 0 (4 shifts, offset 4), then slot 9
	// via port 8 from offset 4: |9-8-4| = 3, total 7. The oracle serves
	// slot 4 via port 8 (4 shifts, offset -4) then slot 9 via port 8:
	// |1-(-4)| = 5 ... or slot 4 via port 0 then slot 9 via port 0 at
	// cost |9-0-4| = 5. Verify the DP finds something <= greedy and
	// equal to the exhaustive minimum.
	p := layout.Identity(16)
	ports := []int{0, 8}
	seq := []int{4, 9}
	greedy, err := MultiPort(seq, p, ports, 16)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := MultiPortOptimal(seq, p, ports, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive over port choices.
	best := int64(1) << 62
	for _, q1 := range ports {
		for _, q2 := range ports {
			c := int64(abs(4-q1)) + int64(abs((9-q2)-(4-q1)))
			if c < best {
				best = c
			}
		}
	}
	if opt != best {
		t.Errorf("oracle %d != exhaustive %d", opt, best)
	}
	if opt > greedy {
		t.Errorf("oracle %d worse than greedy %d", opt, greedy)
	}
}

func TestMultiPortOptimalMatchesExhaustiveSmall(t *testing.T) {
	// Exhaustive check over all port-choice sequences for short traces.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		ports := []int{1, 6}
		var seq []int
		for i := 0; i < 6; i++ {
			seq = append(seq, rng.Intn(n))
		}
		p, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		opt, err := MultiPortOptimal(seq, p, ports, n)
		if err != nil {
			return false
		}
		// Enumerate 2^6 port choices.
		best := int64(1) << 62
		for mask := 0; mask < 1<<len(seq); mask++ {
			offset := 0
			var total int64
			for i, item := range seq {
				q := ports[(mask>>i)&1]
				newOffset := p[item] - q
				total += int64(abs(newOffset - offset))
				offset = newOffset
			}
			if total < best {
				best = total
			}
		}
		return opt == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
