package cost

import (
	"fmt"

	"repro/internal/layout"
)

// MultiPortOptimal returns the minimum shift count of serving seq on a
// single tape with the given ports when the controller may choose ports
// with full lookahead (an oracle head schedule), instead of the greedy
// nearest-port rule the device implements.
//
// Choosing port q for an access to slot s forces the tape offset to
// s − q, so the reachable states after each access are exactly one per
// port. Dynamic programming over (access index, chosen port) solves the
// whole schedule in O(T·k²) time and O(k) space. The gap between this
// bound and MultiPort quantifies how much a smarter controller could
// still save for a fixed placement.
func MultiPortOptimal(seq []int, p layout.Placement, ports []int, tapeLen int) (int64, error) {
	if err := p.Validate(tapeLen); err != nil {
		return 0, err
	}
	k := len(ports)
	if k == 0 {
		return 0, fmt.Errorf("cost: no ports")
	}
	for i, q := range ports {
		if q < 0 || q >= tapeLen {
			return 0, fmt.Errorf("cost: port %d at %d outside [0,%d)", i, q, tapeLen)
		}
	}
	if len(seq) == 0 {
		return 0, nil
	}
	const inf = int64(1) << 62
	cur := make([]int64, k)
	next := make([]int64, k)

	// First access from offset 0.
	item := seq[0]
	if item < 0 || item >= len(p) {
		return 0, fmt.Errorf("cost: access 0 references item %d outside [0,%d)", item, len(p))
	}
	for j, q := range ports {
		cur[j] = int64(abs(p[item] - q))
	}
	for i := 1; i < len(seq); i++ {
		item := seq[i]
		if item < 0 || item >= len(p) {
			return 0, fmt.Errorf("cost: access %d references item %d outside [0,%d)", i, item, len(p))
		}
		slot := p[item]
		prevItem := seq[i-1]
		prevSlot := p[prevItem]
		for j := range next {
			next[j] = inf
		}
		for j2, q2 := range ports {
			newOffset := slot - q2
			for j1, q1 := range ports {
				if cur[j1] == inf {
					continue
				}
				oldOffset := prevSlot - q1
				if c := cur[j1] + int64(abs(newOffset-oldOffset)); c < next[j2] {
					next[j2] = c
				}
			}
		}
		cur, next = next, cur
	}
	best := cur[0]
	for _, c := range cur[1:] {
		if c < best {
			best = c
		}
	}
	return best, nil
}
