package cost

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/layout"
)

// Evaluator maintains a placement and its Linear cost, supporting O(deg)
// evaluation and application of item swaps and item moves. Local search
// and simulated annealing run millions of delta evaluations, so this type
// avoids the O(E) full re-scan per move.
type Evaluator struct {
	g   *graph.Graph
	adj [][]arc // adjacency snapshot for allocation-free deltas
	pos layout.Placement
	cur int64
}

type arc struct {
	to int
	w  int64
}

// NewEvaluator builds an evaluator for a placement that must be a
// permutation of [0, g.N()). The graph's adjacency is snapshotted at
// construction; edits to the graph afterwards are not observed.
func NewEvaluator(g *graph.Graph, p layout.Placement) (*Evaluator, error) {
	if err := p.Validate(g.N()); err != nil {
		return nil, err
	}
	c, err := Linear(g, p)
	if err != nil {
		return nil, err
	}
	adj := make([][]arc, g.N())
	for v := range adj {
		g.Neighbors(v, func(u int, w int64) {
			adj[v] = append(adj[v], arc{u, w})
		})
	}
	return &Evaluator{g: g, adj: adj, pos: p.Clone(), cur: c}, nil
}

// Cost returns the current Linear cost.
func (e *Evaluator) Cost() int64 { return e.cur }

// Placement returns a copy of the current placement.
func (e *Evaluator) Placement() layout.Placement { return e.pos.Clone() }

// SwapDelta returns the cost change of swapping the slots of items u and
// v, without applying it.
func (e *Evaluator) SwapDelta(u, v int) int64 {
	if u == v {
		return 0
	}
	pu, pv := e.pos[u], e.pos[v]
	var delta int64
	for _, a := range e.adj[u] {
		if a.to == v {
			continue // |pu-pv| unchanged under swap
		}
		delta += a.w * int64(abs(pv-e.pos[a.to])-abs(pu-e.pos[a.to]))
	}
	for _, a := range e.adj[v] {
		if a.to == u {
			continue
		}
		delta += a.w * int64(abs(pu-e.pos[a.to])-abs(pv-e.pos[a.to]))
	}
	return delta
}

// Swap applies the swap of items u and v and returns the new cost.
func (e *Evaluator) Swap(u, v int) int64 {
	e.cur += e.SwapDelta(u, v)
	e.pos.Swap(u, v)
	return e.cur
}

// Verify recomputes the cost from scratch and reports whether the
// incremental bookkeeping agrees; it is used by tests and can guard long
// optimization runs.
func (e *Evaluator) Verify() error {
	c, err := Linear(e.g, e.pos)
	if err != nil {
		return err
	}
	if c != e.cur {
		return fmt.Errorf("cost: evaluator drift: incremental %d, recomputed %d", e.cur, c)
	}
	return nil
}
