package cost

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/layout"
)

// Evaluator maintains a placement and its Linear cost, supporting O(deg)
// evaluation and application of item swaps. Local search and simulated
// annealing run millions of delta evaluations, so the evaluator iterates
// the graph's frozen CSR rows — flat, cache-friendly slices — instead of
// per-vertex maps, and its construction is a single pass over the CSR
// with no sorting or per-vertex allocation.
type Evaluator struct {
	csr *graph.CSR
	g   *graph.Graph // live graph when known, for Verify; nil if CSR-built
	pos layout.Placement
	inv []int // slot -> item, the inverse of pos, maintained by Swap/Rotate/Move
	cur int64

	// Scratch for RotateDelta/MoveDelta: tag[x] = 1+index of x in the set
	// being rotated (0 = outside), npos[x] = x's post-rotation slot. Both
	// are reset to their resting state before every delta call returns.
	tag   []int32
	npos  []int
	cycle []int // MoveDelta's rotation-set scratch
}

// NewEvaluator builds an evaluator for a placement that must be a
// permutation of [0, g.N()). The graph is frozen at construction (reusing
// the graph's cached CSR when available); edits to the graph afterwards
// are not observed.
func NewEvaluator(g *graph.Graph, p layout.Placement) (*Evaluator, error) {
	e, err := NewEvaluatorCSR(g.Freeze(), p)
	if err != nil {
		return nil, err
	}
	e.g = g
	return e, nil
}

// NewEvaluatorCSR builds an evaluator directly on a frozen CSR view,
// sharing it with any other consumers (the CSR is immutable).
func NewEvaluatorCSR(c *graph.CSR, p layout.Placement) (*Evaluator, error) {
	if err := p.Validate(c.N()); err != nil {
		return nil, err
	}
	cost, err := LinearCSR(c, p)
	if err != nil {
		return nil, err
	}
	e := &Evaluator{csr: c, pos: p.Clone(), cur: cost}
	e.inv = make([]int, len(e.pos))
	for item, slot := range e.pos {
		e.inv[slot] = item
	}
	return e, nil
}

// Cost returns the current Linear cost.
func (e *Evaluator) Cost() int64 { return e.cur }

// Placement returns a copy of the current placement.
func (e *Evaluator) Placement() layout.Placement { return e.pos.Clone() }

// SwapDelta returns the cost change of swapping the slots of items u and
// v, without applying it.
func (e *Evaluator) SwapDelta(u, v int) int64 {
	if u == v {
		return 0
	}
	pu, pv := e.pos[u], e.pos[v]
	var delta int64
	cols, ws := e.csr.Row(u)
	for i, to := range cols {
		if int(to) == v {
			continue // |pu-pv| unchanged under swap
		}
		delta += ws[i] * int64(abs(pv-e.pos[to])-abs(pu-e.pos[to]))
	}
	cols, ws = e.csr.Row(v)
	for i, to := range cols {
		if int(to) == u {
			continue
		}
		delta += ws[i] * int64(abs(pu-e.pos[to])-abs(pv-e.pos[to]))
	}
	return delta
}

// Swap applies the swap of items u and v and returns the new cost.
func (e *Evaluator) Swap(u, v int) int64 {
	e.cur += e.SwapDelta(u, v)
	pu, pv := e.pos[u], e.pos[v]
	e.pos.Swap(u, v)
	e.inv[pu], e.inv[pv] = v, u
	return e.cur
}

// ItemAt returns the item occupying the given slot (the inverse of the
// placement), maintained incrementally across Swap/Rotate/Move.
func (e *Evaluator) ItemAt(slot int) int { return e.inv[slot] }

// Verify recomputes the cost from scratch and reports whether the
// incremental bookkeeping agrees; it is used by tests and can guard long
// optimization runs. When the evaluator was built from a live graph it
// recomputes against that graph's current state, so it also flags drift
// caused by graph edits the frozen snapshot cannot observe.
func (e *Evaluator) Verify() error {
	var c int64
	var err error
	if e.g != nil {
		c, err = Linear(e.g, e.pos)
	} else {
		c, err = LinearCSR(e.csr, e.pos)
	}
	if err != nil {
		return err
	}
	if c != e.cur {
		return fmt.Errorf("cost: evaluator drift: incremental %d, recomputed %d", e.cur, c)
	}
	return nil
}
