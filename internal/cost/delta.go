package cost

import (
	"fmt"

	"repro/internal/graph"
)

// This file extends Evaluator beyond single swaps with the delta
// primitives the streaming engine needs: rotations and single-item moves
// (richer neighborhood than swaps, still O(Σ deg) per proposal), cost
// tracking under graph mutation (EdgeDelta/ApplyGraphDeltas), and
// branch-light batch evaluation of swap proposals (SwapDeltaBatch).

// EdgeDelta folds an edge-weight increment into the tracked cost: adding
// w to edge {u,v} changes the Linear objective by w·|pos(u)-pos(v)|
// regardless of the rest of the graph, so the evaluator's cost can follow
// graph mutation without a recompute. The caller is responsible for also
// repointing the evaluator at the patched CSR (see ApplyGraphDeltas,
// which does both).
func (e *Evaluator) EdgeDelta(u, v int, w int64) {
	e.cur += w * int64(abs(e.pos[u]-e.pos[v]))
}

// Rebase points the evaluator at a new CSR snapshot of the same vertex
// set, typically the patched successor produced by graph.ApplyDeltas.
// The tracked cost is NOT adjusted; reconcile it first via EdgeDelta for
// every applied weight increment, or use ApplyGraphDeltas.
func (e *Evaluator) Rebase(c *graph.CSR) error {
	if c.N() != len(e.pos) {
		return fmt.Errorf("cost: rebase onto CSR with %d vertices, evaluator has %d", c.N(), len(e.pos))
	}
	e.csr = c
	return nil
}

// ApplyGraphDeltas moves the evaluator forward under graph mutation: ds
// is the batch just applied to the live graph (via graph.ApplyDeltas) and
// c is the resulting frozen view. The tracked cost is updated in O(len(ds))
// — the Linear objective is linear in edge weights, so each increment
// contributes independently and batching order cannot show through.
func (e *Evaluator) ApplyGraphDeltas(c *graph.CSR, ds []graph.Delta) error {
	if err := e.Rebase(c); err != nil {
		return err
	}
	for _, d := range ds {
		e.EdgeDelta(d.U, d.V, d.W)
	}
	return nil
}

// RotateDelta returns the cost change of cyclically rotating the given
// items' slots — items[i] takes the slot of items[i+1], and the last item
// takes the first's — without applying it. Items must be distinct; a set
// smaller than two is a no-op. Cost is O(Σ deg(items)): each edge inside
// the rotation set is counted exactly once via the scratch tags.
func (e *Evaluator) RotateDelta(items []int) int64 {
	k := len(items)
	if k < 2 {
		return 0
	}
	if e.tag == nil {
		e.tag = make([]int32, len(e.pos))
		e.npos = make([]int, len(e.pos))
	}
	for i, x := range items {
		if e.tag[x] != 0 {
			e.clearTags(items[:i])
			panic(fmt.Sprintf("cost: duplicate item %d in rotation set", x))
		}
		e.tag[x] = int32(i + 1)
		e.npos[x] = e.pos[items[(i+1)%k]]
	}
	var delta int64
	for a, x := range items {
		nx, px := e.npos[x], e.pos[x]
		cols, ws := e.csr.Row(x)
		for i, to := range cols {
			t := int(to)
			if tb := int(e.tag[t]); tb != 0 {
				// In-set edge: count it once, when scanning its
				// lower-indexed endpoint; both endpoints move.
				if tb-1 < a {
					continue
				}
				delta += ws[i] * int64(abs(nx-e.npos[t])-abs(px-e.pos[t]))
			} else {
				delta += ws[i] * int64(abs(nx-e.pos[t])-abs(px-e.pos[t]))
			}
		}
	}
	e.clearTags(items)
	return delta
}

// Rotate applies the cyclic rotation and returns the new cost.
func (e *Evaluator) Rotate(items []int) int64 {
	if len(items) < 2 {
		return e.cur
	}
	e.cur += e.RotateDelta(items)
	// RotateDelta left npos populated for exactly these items.
	for _, x := range items {
		e.pos[x] = e.npos[x]
	}
	for _, x := range items {
		e.inv[e.pos[x]] = x
	}
	return e.cur
}

// clearTags resets the scratch tags for the given items.
func (e *Evaluator) clearTags(items []int) {
	for _, x := range items {
		e.tag[x] = 0
	}
}

// moveCycle builds the rotation set equivalent to "move item u to slot,
// shifting the items in between by one" into e.cycle and returns it. A
// move is the classic insertion neighborhood: every item strictly between
// u's slot and the target shifts one position toward u's old slot.
func (e *Evaluator) moveCycle(u, slot int) []int {
	pu := e.pos[u]
	c := e.cycle[:0]
	switch {
	case slot > pu:
		for s := slot; s > pu; s-- {
			c = append(c, e.inv[s])
		}
	case slot < pu:
		for s := slot; s < pu; s++ {
			c = append(c, e.inv[s])
		}
	}
	if len(c) > 0 {
		c = append(c, u)
	}
	e.cycle = c
	return c
}

// MoveDelta returns the cost change of moving item u to the given slot,
// shifting the items between u's current slot and the target by one
// position, without applying it.
func (e *Evaluator) MoveDelta(u, slot int) int64 {
	if slot < 0 || slot >= len(e.pos) {
		panic(fmt.Sprintf("cost: move target slot %d outside [0,%d)", slot, len(e.pos)))
	}
	return e.RotateDelta(e.moveCycle(u, slot))
}

// Move applies the insertion move of item u to the given slot and returns
// the new cost.
func (e *Evaluator) Move(u, slot int) int64 {
	if slot < 0 || slot >= len(e.pos) {
		panic(fmt.Sprintf("cost: move target slot %d outside [0,%d)", slot, len(e.pos)))
	}
	return e.Rotate(e.moveCycle(u, slot))
}

// SwapDeltaBatch evaluates many swap proposals in one call, writing the
// cost delta of swapping us[j] with vs[j] into out[j]. It reuses out when
// it has capacity and returns the filled slice. The inner loops avoid the
// per-neighbor "is this the swap partner" branch of SwapDelta: the
// partner's term is summed like any other and corrected once per proposal
// with 2·w(u,v)·|pu-pv| (zero when the edge is absent), which keeps the
// row scans free of data-dependent skips. Proposals with u == v come out
// as zero naturally.
func (e *Evaluator) SwapDeltaBatch(us, vs []int, out []int64) []int64 {
	if len(us) != len(vs) {
		panic(fmt.Sprintf("cost: batch length mismatch: %d us, %d vs", len(us), len(vs)))
	}
	if cap(out) < len(us) {
		out = make([]int64, len(us))
	}
	out = out[:len(us)]
	pos := e.pos
	for j := range us {
		u, v := us[j], vs[j]
		pu, pv := pos[u], pos[v]
		var d, wuv int64
		cols, ws := e.csr.Row(u)
		for i, to := range cols {
			pt := pos[to]
			d += ws[i] * int64(absz(pv-pt)-absz(pu-pt))
			if int(to) == v {
				wuv = ws[i]
			}
		}
		cols, ws = e.csr.Row(v)
		for i, to := range cols {
			pt := pos[to]
			d += ws[i] * int64(absz(pu-pt)-absz(pv-pt))
		}
		out[j] = d + 2*wuv*int64(absz(pu-pv))
	}
	return out
}

// absz is the branch-free |x| used by the batch hot loop: the sign mask
// turns the conditional negate of abs into two ALU ops, which keeps the
// row scans free of unpredictable branches (proposal distances alternate
// sign roughly half the time, the worst case for a branchy abs).
func absz(x int) int {
	m := x >> 63
	return (x ^ m) - m
}
