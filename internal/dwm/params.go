// Package dwm models a domain wall memory (racetrack memory) device at the
// shift/access level.
//
// A DWM device is an array of nanowire tapes. Each tape stores one data
// word per magnetic domain block and carries one or more fixed access
// ports (read/write heads). Accessing a word requires shifting the tape
// until the word's domain block is aligned under a port; each one-position
// shift is a distinct, energy- and latency-bearing operation. The package
// tracks the mechanical state of every tape (its current shift offset),
// executes reads and writes, and accounts for shift, read, and write
// counts so that higher layers can attribute latency and energy.
//
// The model is word-granular: a "position" is a word slot on the tape, and
// shifting by one moves every domain on the tape by one word slot. This is
// the granularity at which data-placement studies of DWM operate; bit-level
// domain mechanics (shift current pulses, domain pinning) are abstracted
// into the per-shift latency and energy constants of Params.
package dwm

import (
	"errors"
	"fmt"
)

// Params holds the per-operation device timing and energy constants.
//
// The defaults returned by DefaultParams are in the range published for
// racetrack memory prototypes and architectural studies: a shift is
// cheaper than a read, which is cheaper than a write, but shifts dominate
// totals because a single access can require tens of shifts on a long
// tape.
type Params struct {
	// ShiftLatencyNS is the latency of moving the tape by one position,
	// in nanoseconds.
	ShiftLatencyNS float64
	// ReadLatencyNS is the latency of sensing one word at a port.
	ReadLatencyNS float64
	// WriteLatencyNS is the latency of writing one word at a port.
	WriteLatencyNS float64
	// ShiftEnergyPJ is the energy of one single-position shift, in
	// picojoules.
	ShiftEnergyPJ float64
	// ReadEnergyPJ is the energy of one word read.
	ReadEnergyPJ float64
	// WriteEnergyPJ is the energy of one word write.
	WriteEnergyPJ float64
	// ShiftFanout is the number of physical nanowires that shift in
	// lockstep per word-granular shift. Bit-interleaved DWM arrays store
	// a W-bit word as one bit on each of W parallel tapes, so a logical
	// shift drives W shift currents at once: latency is unchanged
	// (parallel), energy multiplies by the fanout. Zero means 1 (a whole
	// word per domain block on a single wire).
	ShiftFanout int
}

// DefaultParams returns device constants representative of published
// racetrack prototypes (roughly: 0.5 ns / 0.5 pJ per shift, 1 ns / 1 pJ
// reads, 1.5 ns / 2 pJ writes).
func DefaultParams() Params {
	return Params{
		ShiftLatencyNS: 0.5,
		ReadLatencyNS:  1.0,
		WriteLatencyNS: 1.5,
		ShiftEnergyPJ:  0.5,
		ReadEnergyPJ:   1.0,
		WriteEnergyPJ:  2.0,
	}
}

// Validate reports whether every constant is non-negative and at least one
// latency is positive (an all-zero Params almost certainly indicates a
// configuration mistake).
func (p Params) Validate() error {
	vals := []struct {
		name string
		v    float64
	}{
		{"ShiftLatencyNS", p.ShiftLatencyNS},
		{"ReadLatencyNS", p.ReadLatencyNS},
		{"WriteLatencyNS", p.WriteLatencyNS},
		{"ShiftEnergyPJ", p.ShiftEnergyPJ},
		{"ReadEnergyPJ", p.ReadEnergyPJ},
		{"WriteEnergyPJ", p.WriteEnergyPJ},
	}
	for _, x := range vals {
		if x.v < 0 {
			return fmt.Errorf("dwm: %s is negative (%g)", x.name, x.v)
		}
	}
	if p.ShiftLatencyNS == 0 && p.ReadLatencyNS == 0 && p.WriteLatencyNS == 0 {
		return errors.New("dwm: all latencies are zero")
	}
	if p.ShiftFanout < 0 {
		return fmt.Errorf("dwm: ShiftFanout is negative (%d)", p.ShiftFanout)
	}
	return nil
}

// shiftFanout returns the effective fanout (zero value means 1).
func (p Params) shiftFanout() float64 {
	if p.ShiftFanout <= 0 {
		return 1
	}
	return float64(p.ShiftFanout)
}

// Geometry describes the physical organization of a device.
type Geometry struct {
	// Tapes is the number of racetrack tapes in the device.
	Tapes int
	// DomainsPerTape is the number of word slots on each tape.
	DomainsPerTape int
	// PortsPerTape is the number of evenly spaced access ports on each
	// tape. Every port can both read and write.
	PortsPerTape int
}

// Validate checks that the geometry is physically meaningful.
func (g Geometry) Validate() error {
	switch {
	case g.Tapes <= 0:
		return fmt.Errorf("dwm: geometry needs at least one tape, got %d", g.Tapes)
	case g.DomainsPerTape <= 0:
		return fmt.Errorf("dwm: geometry needs at least one domain per tape, got %d", g.DomainsPerTape)
	case g.PortsPerTape <= 0:
		return fmt.Errorf("dwm: geometry needs at least one port per tape, got %d", g.PortsPerTape)
	case g.PortsPerTape > g.DomainsPerTape:
		return fmt.Errorf("dwm: %d ports cannot fit on a %d-domain tape",
			g.PortsPerTape, g.DomainsPerTape)
	}
	return nil
}

// Words returns the total word capacity of the device.
func (g Geometry) Words() int { return g.Tapes * g.DomainsPerTape }

// PortPositions returns the canonical evenly spaced port slots for the
// geometry. With k ports on an L-domain tape, port i sits at the center of
// the i-th of k equal segments, which minimizes the worst-case distance
// from any slot to its nearest port.
func (g Geometry) PortPositions() []int {
	return SpreadPorts(g.DomainsPerTape, g.PortsPerTape)
}

// SpreadPorts returns k evenly spaced positions on a tape of length n,
// each at the center of one of k equal segments. It panics if the
// arguments do not describe a valid layout; callers should validate
// geometry first.
func SpreadPorts(n, k int) []int {
	if n <= 0 || k <= 0 || k > n {
		panic(fmt.Sprintf("dwm: invalid port layout n=%d k=%d", n, k))
	}
	ports := make([]int, k)
	for i := range ports {
		// Center of segment [i*n/k, (i+1)*n/k).
		ports[i] = (2*i + 1) * n / (2 * k)
	}
	return ports
}
