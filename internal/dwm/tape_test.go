package dwm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTape(t *testing.T, slots int, ports []int) *Tape {
	t.Helper()
	tape, err := NewTape(slots, ports)
	if err != nil {
		t.Fatalf("NewTape(%d, %v): %v", slots, ports, err)
	}
	return tape
}

func TestNewTapeValidation(t *testing.T) {
	cases := []struct {
		slots int
		ports []int
	}{
		{0, []int{0}},
		{-3, []int{0}},
		{8, nil},
		{8, []int{}},
		{8, []int{-1}},
		{8, []int{8}},
		{8, []int{3, 3}},
		{8, []int{5, 2}},
	}
	for i, c := range cases {
		if _, err := NewTape(c.slots, c.ports); err == nil {
			t.Errorf("case %d: NewTape(%d,%v) accepted", i, c.slots, c.ports)
		}
	}
}

func TestTapeSinglePortShiftCounts(t *testing.T) {
	// Port at 0; tape starts at offset 0.
	tape := mustTape(t, 8, []int{0})
	steps := []struct {
		slot       int
		wantShifts int
	}{
		{0, 0}, // already aligned
		{5, 5}, // 0 -> 5
		{2, 3}, // 5 -> 2
		{7, 5}, // 2 -> 7
		{7, 0}, // stay
	}
	var total int64
	for i, s := range steps {
		_, n, err := tape.Read(s.slot)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if n != s.wantShifts {
			t.Errorf("step %d: shifts = %d, want %d", i, n, s.wantShifts)
		}
		total += int64(s.wantShifts)
	}
	if tape.Shifts() != total {
		t.Errorf("Shifts() = %d, want %d", tape.Shifts(), total)
	}
	if tape.Reads() != int64(len(steps)) {
		t.Errorf("Reads() = %d, want %d", tape.Reads(), len(steps))
	}
}

func TestTapeTwoPortsPicksNearest(t *testing.T) {
	// Ports at 1 and 6 on an 8-slot tape, offset 0.
	tape := mustTape(t, 8, []int{1, 6})
	// Slot 7 is 1 from port 6, 6 from port 1.
	if _, n, err := tape.Read(7); err != nil || n != 1 {
		t.Fatalf("Read(7): shifts=%d err=%v, want 1", n, err)
	}
	// Offset is now 1. Slot 0: port1 dist |0-1-1|=2, port6 dist |0-6-1|=7.
	if _, n, err := tape.Read(0); err != nil || n != 2 {
		t.Fatalf("Read(0): shifts=%d err=%v, want 2", n, err)
	}
}

func TestTapeReadWriteRoundTrip(t *testing.T) {
	tape := mustTape(t, 16, []int{8})
	for slot := 0; slot < 16; slot++ {
		if _, err := tape.Write(slot, uint64(slot*7+1)); err != nil {
			t.Fatalf("Write(%d): %v", slot, err)
		}
	}
	for slot := 0; slot < 16; slot++ {
		v, _, err := tape.Read(slot)
		if err != nil {
			t.Fatalf("Read(%d): %v", slot, err)
		}
		if v != uint64(slot*7+1) {
			t.Errorf("Read(%d) = %d, want %d", slot, v, slot*7+1)
		}
	}
	if tape.Writes() != 16 || tape.Reads() != 16 {
		t.Errorf("counters reads=%d writes=%d, want 16/16", tape.Reads(), tape.Writes())
	}
}

func TestTapeOutOfRangeAccess(t *testing.T) {
	tape := mustTape(t, 8, []int{0})
	if _, _, err := tape.Read(-1); err == nil {
		t.Error("Read(-1) accepted")
	}
	if _, _, err := tape.Read(8); err == nil {
		t.Error("Read(8) accepted")
	}
	if _, err := tape.Write(9, 1); err == nil {
		t.Error("Write(9) accepted")
	}
	if _, err := tape.Peek(8); err == nil {
		t.Error("Peek(8) accepted")
	}
	if _, err := tape.ShiftCostTo(-2); err == nil {
		t.Error("ShiftCostTo(-2) accepted")
	}
}

func TestTapeShiftCostToDoesNotMove(t *testing.T) {
	tape := mustTape(t, 32, []int{0})
	if _, _, err := tape.Read(10); err != nil {
		t.Fatal(err)
	}
	before := tape.Offset()
	d, err := tape.ShiftCostTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Errorf("ShiftCostTo(3) = %d, want 7", d)
	}
	if tape.Offset() != before {
		t.Errorf("ShiftCostTo moved the tape: offset %d -> %d", before, tape.Offset())
	}
}

func TestTapeResetPosition(t *testing.T) {
	tape := mustTape(t, 32, []int{0})
	if _, _, err := tape.Read(20); err != nil {
		t.Fatal(err)
	}
	n := tape.ResetPosition()
	if n != 20 {
		t.Errorf("ResetPosition = %d shifts, want 20", n)
	}
	if tape.Offset() != 0 {
		t.Errorf("offset after reset = %d, want 0", tape.Offset())
	}
	if tape.Shifts() != 40 {
		t.Errorf("Shifts = %d, want 40 (20 out + 20 back)", tape.Shifts())
	}
}

func TestTapeResetCountersKeepsState(t *testing.T) {
	tape := mustTape(t, 16, []int{0})
	if _, err := tape.Write(5, 99); err != nil {
		t.Fatal(err)
	}
	tape.ResetCounters()
	if tape.Shifts() != 0 || tape.Reads() != 0 || tape.Writes() != 0 {
		t.Error("counters not zeroed")
	}
	if tape.Offset() != 5 {
		t.Errorf("offset changed by ResetCounters: %d", tape.Offset())
	}
	v, err := tape.Peek(5)
	if err != nil || v != 99 {
		t.Errorf("contents changed by ResetCounters: %d, %v", v, err)
	}
}

func TestTapeAccessorCopies(t *testing.T) {
	tape := mustTape(t, 8, []int{2, 5})
	ports := tape.Ports()
	ports[0] = 7 // must not corrupt internal state
	again := tape.Ports()
	if again[0] != 2 || again[1] != 5 {
		t.Errorf("Ports leaked internal slice: %v", again)
	}
	if tape.Len() != 8 {
		t.Errorf("Len = %d, want 8", tape.Len())
	}
	if tape.MaxTravel() != 7 {
		t.Errorf("MaxTravel = %d, want 7", tape.MaxTravel())
	}
}

// Property: for a single port at position q starting from offset 0, the
// total shifts of an access sequence equals sum |slot[i] - slot[i-1]| plus
// |slot[0] - q| for the initial seek.
func TestTapeSinglePortShiftIdentity(t *testing.T) {
	f := func(seed int64, q8 uint8) bool {
		const slots = 64
		rng := rand.New(rand.NewSource(seed))
		q := int(q8) % slots
		tape, err := NewTape(slots, []int{q})
		if err != nil {
			return false
		}
		prev := q
		var want int64
		for i := 0; i < 200; i++ {
			s := rng.Intn(slots)
			want += int64(abs(s - prev))
			prev = s
			if _, _, err := tape.Read(s); err != nil {
				return false
			}
		}
		return tape.Shifts() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with multiple ports, total shifts never exceed the single-port
// cost of the same sequence through any one of the ports.
func TestTapeMultiPortNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		const slots = 64
		rng := rand.New(rand.NewSource(seed))
		ports := SpreadPorts(slots, 4)
		multi, err := NewTape(slots, ports)
		if err != nil {
			return false
		}
		single, err := NewTape(slots, []int{ports[0]})
		if err != nil {
			return false
		}
		for i := 0; i < 300; i++ {
			s := rng.Intn(slots)
			if _, _, err := multi.Read(s); err != nil {
				return false
			}
			if _, _, err := single.Read(s); err != nil {
				return false
			}
		}
		return multi.Shifts() <= single.Shifts()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
