package dwm

import (
	"fmt"
	"math/rand"
)

// Shift fault model. Racetrack shifting is analog: a current pulse can
// under- or over-shoot, leaving the tape one position off. The model
// applies an independent error probability per single-position shift;
// each error displaces the final alignment by ±1. The controller senses
// misalignment after the burst (position error detection) and issues
// corrective shifts — which can themselves fault — until the tape is
// aligned. Corrective shifts are charged to the normal shift counter, so
// latency and energy accounting automatically include the overhead; the
// fault counter records how many individual shift errors occurred.

// FaultModel configures per-shift position errors.
type FaultModel struct {
	// Prob is the per-shift error probability (0 disables faults).
	Prob float64
	// Seed drives the error process.
	Seed int64
}

// Validate checks the probability range.
func (f FaultModel) Validate() error {
	if f.Prob < 0 || f.Prob >= 1 {
		return fmt.Errorf("dwm: fault probability %g outside [0,1)", f.Prob)
	}
	return nil
}

// EnableFaults activates the fault model on the tape. Passing a zero
// model disables injection.
func (t *Tape) EnableFaults(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if f.Prob == 0 {
		t.faultProb = 0
		t.faultRng = nil
		return nil
	}
	t.faultProb = f.Prob
	t.faultRng = rand.New(rand.NewSource(f.Seed))
	return nil
}

// Faults returns the number of individual shift errors injected since
// construction or the last ResetCounters.
func (t *Tape) Faults() int64 { return t.faults }

// applyFaults perturbs the offset after a burst of d shifts and returns
// the displacement. Called only when the fault model is active.
func (t *Tape) applyFaults(d int) int {
	disp := 0
	for i := 0; i < d; i++ {
		if t.faultRng.Float64() < t.faultProb {
			t.faults++
			if t.faultRng.Intn(2) == 0 {
				disp--
			} else {
				disp++
			}
		}
	}
	return disp
}

// EnableFaults activates the fault model on every tape of the device,
// deriving per-tape seeds so tapes fault independently.
func (d *Device) EnableFaults(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	for i, t := range d.tapes {
		tf := f
		if tf.Prob > 0 {
			tf.Seed = f.Seed + int64(i)*0x9E3779B9
		}
		if err := t.EnableFaults(tf); err != nil {
			return err
		}
	}
	return nil
}

// Faults returns the total injected shift errors across all tapes.
func (d *Device) Faults() int64 {
	var total int64
	for _, t := range d.tapes {
		total += t.Faults()
	}
	return total
}
