package dwm

import (
	"fmt"
	"math/rand"
)

// Shift fault model. Racetrack shifting is analog: a current pulse can
// under- or over-shoot, leaving the tape one position off. The model
// applies an independent error probability per single-position shift;
// each error displaces the final alignment by ±1. The controller senses
// misalignment after the burst (position error detection) and issues
// corrective shifts — which can themselves fault — until the tape is
// aligned. Corrective shifts are charged to the normal shift counter, so
// latency and energy accounting automatically include the overhead; the
// fault counter records how many individual shift errors occurred.

// FaultModel configures per-shift position errors.
type FaultModel struct {
	// Prob is the per-shift error probability (0 disables faults).
	Prob float64
	// Seed drives the error process.
	Seed int64
}

// Validate checks the probability range.
func (f FaultModel) Validate() error {
	if f.Prob < 0 || f.Prob >= 1 {
		return fmt.Errorf("dwm: fault probability %g outside [0,1)", f.Prob)
	}
	return nil
}

// EnableFaults activates the fault model on the tape. Passing a zero
// model disables injection.
func (t *Tape) EnableFaults(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if f.Prob == 0 {
		t.faultProb = 0
		t.faultRng = nil
		return nil
	}
	t.faultProb = f.Prob
	t.faultRng = rand.New(rand.NewSource(f.Seed))
	return nil
}

// Faults returns the number of individual shift errors injected since
// construction or the last ResetCounters.
func (t *Tape) Faults() int64 { return t.faults }

// applyFaults perturbs the offset after a burst of d shifts and returns
// the displacement. Called only when the fault model is active.
func (t *Tape) applyFaults(d int) int {
	disp := 0
	for i := 0; i < d; i++ {
		if t.faultRng.Float64() < t.faultProb {
			t.faults++
			if t.faultRng.Intn(2) == 0 {
				disp--
			} else {
				disp++
			}
		}
	}
	return disp
}

// deriveTapeSeed maps (seed, tape index) to an independent per-tape RNG
// seed with a splitmix64 finalizer — the same derivation scheme the
// bench harness (bench.DeriveSeed) and the annealer's restart chains
// use. Each tape's error process is a pure function of (seed, index):
// statistically independent streams, stable across runs, and
// independent of the order tapes are accessed in.
func deriveTapeSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// EnableFaults activates the fault model on every tape of the device,
// deriving per-tape seeds (splitmix64 over (Seed, tape index)) so tapes
// fault independently: sharing one seed across tapes would correlate
// their error processes, and a plain additive offset leaves nearby
// streams correlated through the LCG's low bits. Multi-tape fault runs
// are therefore deterministic and tape-order-independent.
func (d *Device) EnableFaults(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	for i, t := range d.tapes {
		tf := f
		if tf.Prob > 0 {
			tf.Seed = deriveTapeSeed(f.Seed, i)
		}
		if err := t.EnableFaults(tf); err != nil {
			return err
		}
	}
	return nil
}

// Faults returns the total injected shift errors across all tapes.
func (d *Device) Faults() int64 {
	var total int64
	for _, t := range d.tapes {
		total += t.Faults()
	}
	return total
}
