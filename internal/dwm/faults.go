package dwm

import (
	"fmt"
	"math/rand"
)

// Shift fault model. Racetrack shifting is analog: a current pulse can
// under- or over-shoot, leaving the tape one position off. The model
// applies an independent error probability per single-position shift;
// each error displaces the final alignment by ±1. The controller senses
// misalignment after the burst (position error detection) and issues
// corrective shifts — which can themselves fault — until the tape is
// aligned. Corrective shifts are charged to the normal shift counter, so
// latency and energy accounting automatically include the overhead; the
// fault counter records how many individual shift errors occurred.

// FaultMode selects how the per-shift error probability is distributed
// along the wire.
type FaultMode int

const (
	// FaultUniform applies the same error probability to every shift —
	// the original model. Its RNG draw sequence is frozen: results for
	// uniform-mode experiments are stable across the pinning extension.
	FaultUniform FaultMode = iota
	// FaultPinning makes the probability position-dependent: domain
	// walls pin preferentially at fabrication defects (edge roughness,
	// notches), so each wire position carries a fixed pinning weight in
	// [0.25, 1.75] drawn deterministically from the seed, scaling the
	// base probability. The weights average 1, so the mean error rate
	// matches the uniform model at equal Prob — what changes is the
	// distribution: accesses whose shift path crosses a strongly pinned
	// region fault repeatedly, including during correction bursts over
	// the same region.
	FaultPinning
)

// FaultModel configures per-shift position errors.
type FaultModel struct {
	// Prob is the per-shift error probability (0 disables faults). In
	// pinning mode it is the mean over positions.
	Prob float64
	// Seed drives the error process (and, in pinning mode, the defect
	// map).
	Seed int64
	// Mode selects uniform or position-dependent (pinning) errors.
	Mode FaultMode
}

// Validate checks the probability range and mode.
func (f FaultModel) Validate() error {
	if f.Prob < 0 || f.Prob >= 1 {
		return fmt.Errorf("dwm: fault probability %g outside [0,1)", f.Prob)
	}
	if f.Mode != FaultUniform && f.Mode != FaultPinning {
		return fmt.Errorf("dwm: unknown fault mode %d", f.Mode)
	}
	return nil
}

// EnableFaults activates the fault model on the tape. Passing a zero
// model disables injection.
func (t *Tape) EnableFaults(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if f.Prob == 0 {
		t.faultProb = 0
		t.faultRng = nil
		t.pinning = false
		return nil
	}
	t.faultProb = f.Prob
	t.faultRng = rand.New(rand.NewSource(f.Seed))
	t.pinning = f.Mode == FaultPinning
	// The defect map is a fixed property of the (simulated) wire: a
	// distinct splitmix lane of the same seed, so the map and the error
	// draws are decorrelated streams of one reproducible process.
	t.pinSeed = mix64(uint64(f.Seed) ^ 0x8CB92BA72F3D8DD7)
	return nil
}

// Faults returns the number of individual shift errors injected since
// construction or the last ResetCounters.
func (t *Tape) Faults() int64 { return t.faults }

// faultDisplacement perturbs a burst that moved the offset from 'from'
// to 'to' and returns the net displacement. It dispatches on the mode;
// the uniform path draws exactly as it always has (one Float64 per
// step, Intn(2) per fault), keeping uniform-mode results frozen.
func (t *Tape) faultDisplacement(from, to int) int {
	if t.pinning {
		return t.applyFaultsPinned(from, to)
	}
	return t.applyFaults(abs(to - from))
}

// applyFaults perturbs the offset after a burst of d shifts and returns
// the displacement. Called only when the uniform fault model is active.
func (t *Tape) applyFaults(d int) int {
	disp := 0
	for i := 0; i < d; i++ {
		if t.faultRng.Float64() < t.faultProb {
			t.faults++
			if t.faultRng.Intn(2) == 0 {
				disp--
			} else {
				disp++
			}
		}
	}
	return disp
}

// applyFaultsPinned walks the burst step by step: the step that moves
// the offset onto position pos faults with probability Prob multiplied
// by pinWeight(pos), the wire's fixed defect map. A correction burst
// re-crosses the same positions, so a strongly pinned region is sticky
// — exactly the clustering the uniform model cannot express.
func (t *Tape) applyFaultsPinned(from, to int) int {
	if from == to {
		return 0
	}
	step := 1
	if to < from {
		step = -1
	}
	disp := 0
	for pos := from + step; ; pos += step {
		p := t.faultProb * t.pinWeight(pos)
		if p > 0.999 {
			// Validate bounds Prob below 1; the weight (≤ 1.75) could push
			// the product over. Cap it so sense-and-correct still
			// terminates with probability 1.
			p = 0.999
		}
		if t.faultRng.Float64() < p {
			t.faults++
			if t.faultRng.Intn(2) == 0 {
				disp--
			} else {
				disp++
			}
		}
		if pos == to {
			break
		}
	}
	return disp
}

// pinWeight returns position pos's pinning factor in [0.25, 1.75],
// mean 1: a deterministic hash of (defect-map seed, position). Offsets
// can be negative; the int64 widening keeps the hash well-defined.
func (t *Tape) pinWeight(pos int) float64 {
	z := mix64(t.pinSeed + uint64(int64(pos))*0xD1B54A32D192ED03)
	frac := float64(z>>11) / (1 << 53)
	return 0.25 + 1.5*frac
}

// mix64 is the splitmix64 finalizer — the tree-wide scheme for
// decorrelated deterministic streams.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// deriveTapeSeed maps (seed, tape index) to an independent per-tape RNG
// seed with a splitmix64 finalizer — the same derivation scheme the
// bench harness (bench.DeriveSeed) and the annealer's restart chains
// use. Each tape's error process is a pure function of (seed, index):
// statistically independent streams, stable across runs, and
// independent of the order tapes are accessed in.
func deriveTapeSeed(seed int64, i int) int64 {
	return int64(mix64(uint64(seed) + uint64(i)*0x9E3779B97F4A7C15))
}

// EnableFaults activates the fault model on every tape of the device,
// deriving per-tape seeds (splitmix64 over (Seed, tape index)) so tapes
// fault independently: sharing one seed across tapes would correlate
// their error processes, and a plain additive offset leaves nearby
// streams correlated through the LCG's low bits. Multi-tape fault runs
// are therefore deterministic and tape-order-independent.
func (d *Device) EnableFaults(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	for i, t := range d.tapes {
		tf := f
		if tf.Prob > 0 {
			tf.Seed = deriveTapeSeed(f.Seed, i)
		}
		if err := t.EnableFaults(tf); err != nil {
			return err
		}
	}
	return nil
}

// Faults returns the total injected shift errors across all tapes.
func (d *Device) Faults() int64 {
	var total int64
	for _, t := range d.tapes {
		total += t.Faults()
	}
	return total
}
