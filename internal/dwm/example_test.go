package dwm_test

import (
	"fmt"
	"log"

	"repro/internal/dwm"
)

// Example demonstrates the mechanical cost model: accesses far from the
// head's current position cost proportionally many shifts.
func Example() {
	dev, err := dwm.NewDevice(dwm.Geometry{
		Tapes: 1, DomainsPerTape: 16, PortsPerTape: 1,
	}, dwm.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	// The single port sits at slot 8; the tape starts aligned there.
	for _, slot := range []int{8, 0, 1, 15} {
		_, shifts, err := dev.Read(dwm.Address{Tape: 0, Slot: slot})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read slot %2d: %d shifts\n", slot, shifts)
	}
	c := dev.Counters()
	fmt.Printf("total: %d shifts, %.1f ns, %.1f pJ\n",
		c.Shifts, c.LatencyNS(dev.Params()), c.EnergyPJ(dev.Params()))
	// Output:
	// read slot  8: 0 shifts
	// read slot  0: 8 shifts
	// read slot  1: 1 shifts
	// read slot 15: 14 shifts
	// total: 23 shifts, 15.5 ns, 15.5 pJ
}
