package dwm

import "fmt"

// Address identifies a word slot in a device: which tape and which slot on
// that tape.
type Address struct {
	Tape int
	Slot int
}

// Counters aggregates the operation counts of a device or a single tape.
type Counters struct {
	Shifts int64
	Reads  int64
	Writes int64
}

// Add returns the element-wise sum of two counter sets.
func (c Counters) Add(o Counters) Counters {
	return Counters{c.Shifts + o.Shifts, c.Reads + o.Reads, c.Writes + o.Writes}
}

// LatencyNS returns the total latency in nanoseconds the counted
// operations take under the given parameters.
func (c Counters) LatencyNS(p Params) float64 {
	return float64(c.Shifts)*p.ShiftLatencyNS +
		float64(c.Reads)*p.ReadLatencyNS +
		float64(c.Writes)*p.WriteLatencyNS
}

// EnergyPJ returns the total energy in picojoules the counted operations
// consume under the given parameters. Shift energy scales with the
// interleaving fanout (parallel nanowires all drive a shift current);
// latency does not.
func (c Counters) EnergyPJ(p Params) float64 {
	return float64(c.Shifts)*p.ShiftEnergyPJ*p.shiftFanout() +
		float64(c.Reads)*p.ReadEnergyPJ +
		float64(c.Writes)*p.WriteEnergyPJ
}

// Device is an array of tapes sharing one geometry and one set of device
// parameters. Each tape keeps its own independent mechanical offset, so an
// access pattern alternating between tapes pays no shifts for the
// alternation itself.
type Device struct {
	geom   Geometry
	params Params
	tapes  []*Tape
}

// NewDevice builds a device from a validated geometry and parameter set.
func NewDevice(g Geometry, p Params) (*Device, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ports := g.PortPositions()
	d := &Device{geom: g, params: p, tapes: make([]*Tape, g.Tapes)}
	for i := range d.tapes {
		t, err := NewTape(g.DomainsPerTape, ports)
		if err != nil {
			return nil, err
		}
		d.tapes[i] = t
	}
	return d, nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Params returns the device timing/energy parameters.
func (d *Device) Params() Params { return d.params }

// Tape returns the i-th tape for inspection. The returned tape is live:
// operations on it are reflected in device counters.
func (d *Device) Tape(i int) (*Tape, error) {
	if i < 0 || i >= len(d.tapes) {
		return nil, fmt.Errorf("dwm: tape %d outside [0,%d)", i, len(d.tapes))
	}
	return d.tapes[i], nil
}

// check validates an address against the geometry.
func (d *Device) check(a Address) error {
	if a.Tape < 0 || a.Tape >= d.geom.Tapes {
		return fmt.Errorf("dwm: address tape %d outside [0,%d)", a.Tape, d.geom.Tapes)
	}
	if a.Slot < 0 || a.Slot >= d.geom.DomainsPerTape {
		return fmt.Errorf("dwm: address slot %d outside [0,%d)", a.Slot, d.geom.DomainsPerTape)
	}
	return nil
}

// Read reads the word at a, shifting the addressed tape as needed, and
// returns the value together with the shifts performed.
func (d *Device) Read(a Address) (val uint64, shifts int, err error) {
	if err := d.check(a); err != nil {
		return 0, 0, err
	}
	return d.tapes[a.Tape].Read(a.Slot)
}

// Write writes val at a, shifting the addressed tape as needed, and
// returns the shifts performed.
func (d *Device) Write(a Address, val uint64) (shifts int, err error) {
	if err := d.check(a); err != nil {
		return 0, err
	}
	return d.tapes[a.Tape].Write(a.Slot, val)
}

// ShiftCostTo returns the shifts an access to a would take right now,
// without performing it.
func (d *Device) ShiftCostTo(a Address) (int, error) {
	if err := d.check(a); err != nil {
		return 0, err
	}
	return d.tapes[a.Tape].ShiftCostTo(a.Slot)
}

// Counters returns the summed operation counters across all tapes.
func (d *Device) Counters() Counters {
	var c Counters
	for _, t := range d.tapes {
		c.Shifts += t.Shifts()
		c.Reads += t.Reads()
		c.Writes += t.Writes()
	}
	return c
}

// TapeCounters returns the per-tape operation counters.
func (d *Device) TapeCounters() []Counters {
	cs := make([]Counters, len(d.tapes))
	for i, t := range d.tapes {
		cs[i] = Counters{t.Shifts(), t.Reads(), t.Writes()}
	}
	return cs
}

// ResetCounters zeroes all tape counters, leaving contents and mechanical
// positions intact.
func (d *Device) ResetCounters() {
	for _, t := range d.tapes {
		t.ResetCounters()
	}
}

// ResetPositions shifts every tape back to offset zero, charging the
// shifts needed, and returns the total shifts performed.
func (d *Device) ResetPositions() int {
	total := 0
	for _, t := range d.tapes {
		total += t.ResetPosition()
	}
	return total
}
