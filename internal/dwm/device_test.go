package dwm

import (
	"math/rand"
	"testing"
)

func mustDevice(t *testing.T, g Geometry) *Device {
	t.Helper()
	d, err := NewDevice(g, DefaultParams())
	if err != nil {
		t.Fatalf("NewDevice(%+v): %v", g, err)
	}
	return d
}

func TestNewDeviceRejectsBadGeometry(t *testing.T) {
	if _, err := NewDevice(Geometry{}, DefaultParams()); err == nil {
		t.Error("zero geometry accepted")
	}
	if _, err := NewDevice(Geometry{Tapes: 1, DomainsPerTape: 8, PortsPerTape: 1},
		Params{ShiftLatencyNS: -1}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestDeviceAddressValidation(t *testing.T) {
	d := mustDevice(t, Geometry{Tapes: 2, DomainsPerTape: 8, PortsPerTape: 1})
	bad := []Address{
		{Tape: -1, Slot: 0},
		{Tape: 2, Slot: 0},
		{Tape: 0, Slot: -1},
		{Tape: 0, Slot: 8},
	}
	for i, a := range bad {
		if _, _, err := d.Read(a); err == nil {
			t.Errorf("case %d: Read(%+v) accepted", i, a)
		}
		if _, err := d.Write(a, 1); err == nil {
			t.Errorf("case %d: Write(%+v) accepted", i, a)
		}
		if _, err := d.ShiftCostTo(a); err == nil {
			t.Errorf("case %d: ShiftCostTo(%+v) accepted", i, a)
		}
	}
	if _, err := d.Tape(5); err == nil {
		t.Error("Tape(5) accepted")
	}
}

func TestDeviceIndependentTapeHeads(t *testing.T) {
	d := mustDevice(t, Geometry{Tapes: 2, DomainsPerTape: 16, PortsPerTape: 1})
	// Port is at slot 8 on each tape.
	// Access tape0 slot 0 (8 shifts), tape1 slot 15 (7 shifts), then
	// tape0 slot 0 again: must be free because tape0's head did not move.
	if _, n, err := d.Read(Address{0, 0}); err != nil || n != 8 {
		t.Fatalf("first read: shifts=%d err=%v", n, err)
	}
	if _, n, err := d.Read(Address{1, 15}); err != nil || n != 7 {
		t.Fatalf("second read: shifts=%d err=%v", n, err)
	}
	if _, n, err := d.Read(Address{0, 0}); err != nil || n != 0 {
		t.Fatalf("third read should be free: shifts=%d err=%v", n, err)
	}
	c := d.Counters()
	if c.Shifts != 15 || c.Reads != 3 || c.Writes != 0 {
		t.Errorf("counters = %+v, want shifts 15 reads 3", c)
	}
}

func TestDeviceWriteReadRoundTrip(t *testing.T) {
	g := Geometry{Tapes: 3, DomainsPerTape: 8, PortsPerTape: 2}
	d := mustDevice(t, g)
	rng := rand.New(rand.NewSource(7))
	want := map[Address]uint64{}
	for tape := 0; tape < g.Tapes; tape++ {
		for slot := 0; slot < g.DomainsPerTape; slot++ {
			a := Address{tape, slot}
			v := rng.Uint64()
			want[a] = v
			if _, err := d.Write(a, v); err != nil {
				t.Fatalf("Write(%+v): %v", a, err)
			}
		}
	}
	for a, v := range want {
		got, _, err := d.Read(a)
		if err != nil {
			t.Fatalf("Read(%+v): %v", a, err)
		}
		if got != v {
			t.Errorf("Read(%+v) = %d, want %d", a, got, v)
		}
	}
}

func TestDeviceTapeCountersSumToTotal(t *testing.T) {
	d := mustDevice(t, Geometry{Tapes: 4, DomainsPerTape: 32, PortsPerTape: 1})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a := Address{rng.Intn(4), rng.Intn(32)}
		if rng.Intn(2) == 0 {
			if _, _, err := d.Read(a); err != nil {
				t.Fatal(err)
			}
		} else if _, err := d.Write(a, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var sum Counters
	for _, c := range d.TapeCounters() {
		sum = sum.Add(c)
	}
	if sum != d.Counters() {
		t.Errorf("per-tape sum %+v != device total %+v", sum, d.Counters())
	}
	if sum.Reads+sum.Writes != 500 {
		t.Errorf("reads+writes = %d, want 500", sum.Reads+sum.Writes)
	}
}

func TestDeviceResetPositionsAndCounters(t *testing.T) {
	d := mustDevice(t, Geometry{Tapes: 2, DomainsPerTape: 16, PortsPerTape: 1})
	if _, _, err := d.Read(Address{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Read(Address{1, 15}); err != nil {
		t.Fatal(err)
	}
	n := d.ResetPositions()
	if n != 15 { // 8 back on tape0, 7 back on tape1
		t.Errorf("ResetPositions = %d, want 15", n)
	}
	d.ResetCounters()
	if c := d.Counters(); c != (Counters{}) {
		t.Errorf("counters not zeroed: %+v", c)
	}
}

func TestCountersLatencyEnergy(t *testing.T) {
	p := Params{
		ShiftLatencyNS: 2, ReadLatencyNS: 3, WriteLatencyNS: 5,
		ShiftEnergyPJ: 7, ReadEnergyPJ: 11, WriteEnergyPJ: 13,
	}
	c := Counters{Shifts: 10, Reads: 4, Writes: 2}
	if got, want := c.LatencyNS(p), 10.0*2+4*3+2*5; got != want {
		t.Errorf("LatencyNS = %g, want %g", got, want)
	}
	if got, want := c.EnergyPJ(p), 10.0*7+4*11+2*13; got != want {
		t.Errorf("EnergyPJ = %g, want %g", got, want)
	}
}

func TestShiftFanoutScalesEnergyNotLatency(t *testing.T) {
	base := Params{
		ShiftLatencyNS: 2, ReadLatencyNS: 3, WriteLatencyNS: 5,
		ShiftEnergyPJ: 7, ReadEnergyPJ: 11, WriteEnergyPJ: 13,
	}
	wide := base
	wide.ShiftFanout = 32
	if err := wide.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Counters{Shifts: 10, Reads: 4, Writes: 2}
	if c.LatencyNS(base) != c.LatencyNS(wide) {
		t.Errorf("fanout changed latency: %g vs %g", c.LatencyNS(base), c.LatencyNS(wide))
	}
	wantDelta := 10.0 * 7 * 31 // 31 extra wires per shift
	if got := c.EnergyPJ(wide) - c.EnergyPJ(base); got != wantDelta {
		t.Errorf("fanout energy delta = %g, want %g", got, wantDelta)
	}
	// Zero fanout behaves as 1.
	zero := base
	zero.ShiftFanout = 0
	if c.EnergyPJ(zero) != c.EnergyPJ(base) {
		t.Error("zero fanout differs from fanout 1")
	}
	neg := base
	neg.ShiftFanout = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative fanout accepted")
	}
}

func TestDeviceGeometryParamsAccessors(t *testing.T) {
	g := Geometry{Tapes: 2, DomainsPerTape: 16, PortsPerTape: 2}
	p := DefaultParams()
	d, err := NewDevice(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Geometry() != g {
		t.Errorf("Geometry() = %+v, want %+v", d.Geometry(), g)
	}
	if d.Params() != p {
		t.Errorf("Params() = %+v, want %+v", d.Params(), p)
	}
}
