package dwm

import (
	"fmt"
	"math/rand"
)

// Tape is a single racetrack nanowire holding one data word per domain
// block, with a set of fixed access ports.
//
// Mechanical model: the tape's shift state is captured by an integer
// offset. The word in slot s is aligned under the port at physical
// position q exactly when s == q + offset. Accessing slot s through port q
// therefore requires |(s - q) - offset| single-position shifts, after
// which the offset becomes s - q. The tape picks the port minimizing the
// shift count for each access.
//
// The offset ranges over [-(L-1), L-1] for an L-domain tape; real devices
// provide that travel with padding domains at both ends of the wire. The
// model does not charge for the padding but Tape exposes MaxTravel so
// capacity studies can account for it.
type Tape struct {
	words  []uint64
	ports  []int
	offset int

	shifts int64
	reads  int64
	writes int64

	// Shift fault injection (see faults.go); faultRng nil = disabled.
	faultProb float64
	faultRng  *rand.Rand
	faults    int64
	// Pinning mode: position-dependent error probability drawn from the
	// wire's fixed defect map (seeded by pinSeed).
	pinning bool
	pinSeed uint64
}

// NewTape builds a tape with the given number of word slots and the given
// port positions. Port positions must be distinct, sorted ascending, and
// within [0, slots).
func NewTape(slots int, ports []int) (*Tape, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("dwm: tape needs at least one slot, got %d", slots)
	}
	if len(ports) == 0 {
		return nil, fmt.Errorf("dwm: tape needs at least one port")
	}
	for i, p := range ports {
		if p < 0 || p >= slots {
			return nil, fmt.Errorf("dwm: port %d at %d is outside [0,%d)", i, p, slots)
		}
		if i > 0 && ports[i-1] >= p {
			return nil, fmt.Errorf("dwm: port positions must be strictly ascending, got %v", ports)
		}
	}
	t := &Tape{
		words: make([]uint64, slots),
		ports: append([]int(nil), ports...),
	}
	return t, nil
}

// Len returns the number of word slots on the tape.
func (t *Tape) Len() int { return len(t.words) }

// Ports returns a copy of the tape's port positions.
func (t *Tape) Ports() []int { return append([]int(nil), t.ports...) }

// Offset returns the tape's current shift offset.
func (t *Tape) Offset() int { return t.offset }

// MaxTravel returns the number of padding domains required on each side of
// the data region to realize the full offset range.
func (t *Tape) MaxTravel() int { return len(t.words) - 1 }

// Shifts, Reads and Writes return the operation counters accumulated since
// construction or the last ResetCounters.
func (t *Tape) Shifts() int64 { return t.shifts }

// Reads returns the number of word reads performed.
func (t *Tape) Reads() int64 { return t.reads }

// Writes returns the number of word writes performed.
func (t *Tape) Writes() int64 { return t.writes }

// ResetCounters zeroes the shift/read/write/fault counters without
// disturbing the tape's contents or mechanical position.
func (t *Tape) ResetCounters() { t.shifts, t.reads, t.writes, t.faults = 0, 0, 0, 0 }

// ResetPosition shifts the tape back to offset zero, charging the shifts
// needed to get there, and returns the number of shifts performed.
func (t *Tape) ResetPosition() int {
	n := abs(t.offset)
	t.shifts += int64(n)
	t.offset = 0
	return n
}

// ShiftCostTo returns the number of shifts an access to slot would take
// from the current position, without performing it.
func (t *Tape) ShiftCostTo(slot int) (int, error) {
	_, d, err := t.nearestPort(slot)
	return d, err
}

// nearestPort returns the port index minimizing the shift distance to
// align slot, along with that distance.
func (t *Tape) nearestPort(slot int) (port, dist int, err error) {
	if slot < 0 || slot >= len(t.words) {
		return 0, 0, fmt.Errorf("dwm: slot %d outside [0,%d)", slot, len(t.words))
	}
	best, bestD := -1, 0
	for i, q := range t.ports {
		d := abs(slot - q - t.offset)
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD, nil
}

// align shifts the tape so slot is under its nearest port and returns the
// number of shifts performed, including any corrective shifts required by
// injected position errors.
func (t *Tape) align(slot int) (int, error) {
	port, d, err := t.nearestPort(slot)
	if err != nil {
		return 0, err
	}
	target := slot - t.ports[port]
	total := d
	t.shifts += int64(d)
	prev := t.offset
	t.offset = target
	if t.faultRng != nil {
		// The burst may land off target; sense and correct, with the
		// corrective shifts themselves subject to faults. The loop
		// terminates with probability 1 (effective prob < 1); the
		// iteration cap turns a pathological RNG stream into an error
		// instead of a hang. The burst's start offset is threaded
		// through so the pinning model knows which wire positions the
		// walls crossed; the uniform model only uses the distance.
		t.offset = target + t.faultDisplacement(prev, target)
		for iter := 0; t.offset != target; iter++ {
			if iter > 10000 {
				return 0, fmt.Errorf("dwm: position correction did not converge")
			}
			c := abs(target - t.offset)
			t.shifts += int64(c)
			total += c
			prev = t.offset
			t.offset = target + t.faultDisplacement(prev, target)
		}
	}
	return total, nil
}

// Read aligns slot under its nearest port and reads the word stored
// there. It returns the value and the number of shifts performed.
func (t *Tape) Read(slot int) (val uint64, shifts int, err error) {
	shifts, err = t.align(slot)
	if err != nil {
		return 0, 0, err
	}
	t.reads++
	return t.words[slot], shifts, nil
}

// Write aligns slot under its nearest port and writes val there. It
// returns the number of shifts performed.
func (t *Tape) Write(slot int, val uint64) (shifts int, err error) {
	shifts, err = t.align(slot)
	if err != nil {
		return 0, err
	}
	t.writes++
	t.words[slot] = val
	return shifts, nil
}

// Peek returns the word in slot without shifting or counting an access.
// It is a debugging/verification aid, not a modeled device operation.
func (t *Tape) Peek(slot int) (uint64, error) {
	if slot < 0 || slot >= len(t.words) {
		return 0, fmt.Errorf("dwm: slot %d outside [0,%d)", slot, len(t.words))
	}
	return t.words[slot], nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
