package dwm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFaultModelValidate(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0, 2.0} {
		if err := (FaultModel{Prob: p}).Validate(); err == nil {
			t.Errorf("prob %g accepted", p)
		}
	}
	if err := (FaultModel{Prob: 0}).Validate(); err != nil {
		t.Errorf("zero prob rejected: %v", err)
	}
	if err := (FaultModel{Prob: 0.5}).Validate(); err != nil {
		t.Errorf("0.5 prob rejected: %v", err)
	}
}

func TestZeroProbMatchesFaultFree(t *testing.T) {
	a := mustTape(t, 32, []int{0})
	b := mustTape(t, 32, []int{0})
	if err := b.EnableFaults(FaultModel{Prob: 0, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		s := rng.Intn(32)
		if _, _, err := a.Read(s); err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.Read(s); err != nil {
			t.Fatal(err)
		}
	}
	if a.Shifts() != b.Shifts() || b.Faults() != 0 {
		t.Errorf("zero-prob faults changed behavior: %d vs %d shifts, %d faults",
			a.Shifts(), b.Shifts(), b.Faults())
	}
}

func TestFaultsAddOverheadButPreserveCorrectness(t *testing.T) {
	clean := mustTape(t, 64, []int{32})
	faulty := mustTape(t, 64, []int{32})
	if err := faulty.EnableFaults(FaultModel{Prob: 0.02, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// Write then read back through the faulty tape: data must be intact
	// (corrections realign before every access completes).
	vals := map[int]uint64{}
	for i := 0; i < 300; i++ {
		s := rng.Intn(64)
		v := rng.Uint64()
		vals[s] = v
		if _, err := clean.Write(s, v); err != nil {
			t.Fatal(err)
		}
		if _, err := faulty.Write(s, v); err != nil {
			t.Fatal(err)
		}
	}
	// Compare shift overhead over the identical write phase only.
	cleanShifts, faultyShifts := clean.Shifts(), faulty.Shifts()
	for s, v := range vals {
		got, _, err := faulty.Read(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("slot %d: read %d, want %d", s, got, v)
		}
	}
	if faulty.Faults() == 0 {
		t.Error("no faults injected at p=0.02 over thousands of shifts")
	}
	if faultyShifts <= cleanShifts {
		t.Errorf("faulty shifts %d not above clean %d", faultyShifts, cleanShifts)
	}
	// Expected overhead ~= p per shift (each fault costs ~1 corrective
	// shift), so 2% nominal; assert well under 10%.
	if float64(faultyShifts) > 1.1*float64(cleanShifts) {
		t.Errorf("overhead implausibly high: %d vs %d", faultyShifts, cleanShifts)
	}
}

func TestFaultsDeterministicPerSeed(t *testing.T) {
	run := func() (int64, int64) {
		tape := mustTape(t, 32, []int{0})
		if err := tape.EnableFaults(FaultModel{Prob: 0.05, Seed: 11}); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 200; i++ {
			if _, _, err := tape.Read(rng.Intn(32)); err != nil {
				t.Fatal(err)
			}
		}
		return tape.Shifts(), tape.Faults()
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 || f1 != f2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", s1, f1, s2, f2)
	}
}

func TestDeviceEnableFaults(t *testing.T) {
	d := mustDevice(t, Geometry{Tapes: 3, DomainsPerTape: 16, PortsPerTape: 1})
	if err := d.EnableFaults(FaultModel{Prob: 2}); err == nil {
		t.Error("bad model accepted")
	}
	if err := d.EnableFaults(FaultModel{Prob: 0.05, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 600; i++ {
		if _, _, err := d.Read(Address{Tape: rng.Intn(3), Slot: rng.Intn(16)}); err != nil {
			t.Fatal(err)
		}
	}
	if d.Faults() == 0 {
		t.Error("no device-level faults recorded")
	}
	// Tapes fault independently: at least two tapes should have faults.
	withFaults := 0
	for i := 0; i < 3; i++ {
		tape, err := d.Tape(i)
		if err != nil {
			t.Fatal(err)
		}
		if tape.Faults() > 0 {
			withFaults++
		}
	}
	if withFaults < 2 {
		t.Errorf("only %d tapes faulted; seeds not independent?", withFaults)
	}
	d.ResetCounters()
	if d.Faults() != 0 {
		t.Error("ResetCounters did not clear faults")
	}
}

func TestDeriveTapeSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 256; i++ {
		s := deriveTapeSeed(7, i)
		if seen[s] {
			t.Fatalf("derived seed collision at tape %d", i)
		}
		seen[s] = true
	}
	if deriveTapeSeed(7, 3) != deriveTapeSeed(7, 3) {
		t.Error("deriveTapeSeed not stable")
	}
	if deriveTapeSeed(7, 3) == deriveTapeSeed(8, 3) {
		t.Error("deriveTapeSeed ignores the base seed")
	}
}

// Each tape's error process is a pure function of (device seed, tape
// index): interleaving accesses across tapes in different orders must
// leave every tape with identical per-tape shift and fault counters.
func TestDeviceFaultsTapeOrderIndependent(t *testing.T) {
	const tapes, slots, accesses = 4, 32, 120
	run := func(interleaved bool) []Counters {
		d := mustDevice(t, Geometry{Tapes: tapes, DomainsPerTape: slots, PortsPerTape: 1})
		if err := d.EnableFaults(FaultModel{Prob: 0.1, Seed: 9}); err != nil {
			t.Fatal(err)
		}
		// The same per-tape slot sequence either tape-by-tape or
		// round-robin across tapes.
		slotAt := func(tape, i int) int { return (i*7 + tape*3) % slots }
		if interleaved {
			for i := 0; i < accesses; i++ {
				for tp := 0; tp < tapes; tp++ {
					if _, _, err := d.Read(Address{Tape: tp, Slot: slotAt(tp, i)}); err != nil {
						t.Fatal(err)
					}
				}
			}
		} else {
			for tp := tapes - 1; tp >= 0; tp-- {
				for i := 0; i < accesses; i++ {
					if _, _, err := d.Read(Address{Tape: tp, Slot: slotAt(tp, i)}); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return d.TapeCounters()
	}
	a, b := run(true), run(false)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("tape %d counters depend on access order: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFaultModeValidate(t *testing.T) {
	if err := (FaultModel{Prob: 0.1, Mode: FaultPinning}).Validate(); err != nil {
		t.Errorf("pinning mode rejected: %v", err)
	}
	if err := (FaultModel{Prob: 0.1, Mode: FaultMode(99)}).Validate(); err == nil {
		t.Error("unknown mode accepted")
	}
}

// The Mode field's zero value is FaultUniform, and the uniform draw
// sequence must be frozen: enabling with an explicit FaultUniform is
// identical to the pre-Mode API, and must differ from pinning (same
// seed) — otherwise the mode switch is vacuous.
func TestUniformModeFrozenAndPinningDiffers(t *testing.T) {
	run := func(mode FaultMode) (int64, int64) {
		tape := mustTape(t, 32, []int{0})
		if err := tape.EnableFaults(FaultModel{Prob: 0.1, Seed: 11, Mode: mode}); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 300; i++ {
			if _, _, err := tape.Read(rng.Intn(32)); err != nil {
				t.Fatal(err)
			}
		}
		return tape.Shifts(), tape.Faults()
	}
	us, uf := run(FaultUniform)
	zs, zf := run(FaultMode(0))
	if us != zs || uf != zf {
		t.Errorf("zero-value mode diverged from FaultUniform: %d/%d vs %d/%d", zs, zf, us, uf)
	}
	ps, pf := run(FaultPinning)
	if ps == us && pf == uf {
		t.Error("pinning mode indistinguishable from uniform at the same seed")
	}
}

func TestPinningDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) (int64, int64) {
		tape := mustTape(t, 48, []int{0, 24})
		if err := tape.EnableFaults(FaultModel{Prob: 0.05, Seed: seed, Mode: FaultPinning}); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 250; i++ {
			if _, _, err := tape.Read(rng.Intn(48)); err != nil {
				t.Fatal(err)
			}
		}
		return tape.Shifts(), tape.Faults()
	}
	s1, f1 := run(7)
	s2, f2 := run(7)
	if s1 != s2 || f1 != f2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", s1, f1, s2, f2)
	}
	s3, f3 := run(8)
	if s1 == s3 && f1 == f3 {
		t.Error("different seeds produced identical pinning runs")
	}
}

// The defect map is bounded and mean-preserving: every weight lies in
// [0.25, 1.75] and the average over a long stretch of wire is ~1, so
// pinning redistributes error probability without raising its mean.
func TestPinWeightBoundedMeanOne(t *testing.T) {
	tape := mustTape(t, 8, []int{0})
	if err := tape.EnableFaults(FaultModel{Prob: 0.1, Seed: 3, Mode: FaultPinning}); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for pos := -4096; pos < 4096; pos++ {
		w := tape.pinWeight(pos)
		if w < 0.25 || w > 1.75 {
			t.Fatalf("pinWeight(%d) = %g outside [0.25, 1.75]", pos, w)
		}
		if w2 := tape.pinWeight(pos); w2 != w {
			t.Fatalf("pinWeight(%d) not stable: %g vs %g", pos, w, w2)
		}
		sum += w
	}
	mean := sum / 8192
	if mean < 0.95 || mean > 1.05 {
		t.Errorf("defect-map mean %g, want ~1", mean)
	}
}

// Pinned faults still never corrupt data: every access completes with
// the slot aligned and read-back intact, same contract as uniform.
func TestPinningPreservesCorrectness(t *testing.T) {
	tape := mustTape(t, 64, []int{32})
	if err := tape.EnableFaults(FaultModel{Prob: 0.05, Seed: 13, Mode: FaultPinning}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	vals := map[int]uint64{}
	for i := 0; i < 300; i++ {
		s := rng.Intn(64)
		v := rng.Uint64()
		vals[s] = v
		if _, err := tape.Write(s, v); err != nil {
			t.Fatal(err)
		}
	}
	for s, v := range vals {
		got, _, err := tape.Read(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("slot %d: read %d, want %d", s, got, v)
		}
	}
	if tape.Faults() == 0 {
		t.Error("no pinned faults injected at p=0.05 over thousands of shifts")
	}
}

// Property: after any access on a faulty tape, the requested slot is
// genuinely aligned (offset equals slot - chosen port) — corrections
// always complete.
func TestFaultyAlignmentAlwaysConverges(t *testing.T) {
	f := func(seed int64) bool {
		for _, mode := range []FaultMode{FaultUniform, FaultPinning} {
			tape, err := NewTape(32, []int{5, 20})
			if err != nil {
				return false
			}
			if err := tape.EnableFaults(FaultModel{Prob: 0.3, Seed: seed, Mode: mode}); err != nil {
				return false
			}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				s := rng.Intn(32)
				if _, _, err := tape.Read(s); err != nil {
					return false
				}
				// Some port must be exactly aligned with s.
				aligned := false
				for _, q := range tape.Ports() {
					if s-q == tape.Offset() {
						aligned = true
					}
				}
				if !aligned {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
