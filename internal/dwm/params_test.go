package dwm

import (
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidateRejectsNegative(t *testing.T) {
	cases := []Params{
		{ShiftLatencyNS: -1, ReadLatencyNS: 1},
		{ReadLatencyNS: -0.1, ShiftLatencyNS: 1},
		{WriteLatencyNS: -5, ShiftLatencyNS: 1},
		{ShiftEnergyPJ: -1, ShiftLatencyNS: 1},
		{ReadEnergyPJ: -1, ShiftLatencyNS: 1},
		{WriteEnergyPJ: -1, ShiftLatencyNS: 1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: negative param accepted: %+v", i, p)
		}
	}
}

func TestParamsValidateRejectsAllZeroLatency(t *testing.T) {
	p := Params{ShiftEnergyPJ: 1}
	if err := p.Validate(); err == nil {
		t.Error("all-zero latency accepted")
	}
}

func TestGeometryValidate(t *testing.T) {
	good := Geometry{Tapes: 4, DomainsPerTape: 64, PortsPerTape: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good geometry rejected: %v", err)
	}
	bad := []Geometry{
		{Tapes: 0, DomainsPerTape: 64, PortsPerTape: 1},
		{Tapes: -1, DomainsPerTape: 64, PortsPerTape: 1},
		{Tapes: 1, DomainsPerTape: 0, PortsPerTape: 1},
		{Tapes: 1, DomainsPerTape: 64, PortsPerTape: 0},
		{Tapes: 1, DomainsPerTape: 4, PortsPerTape: 5},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: bad geometry accepted: %+v", i, g)
		}
	}
}

func TestGeometryWords(t *testing.T) {
	g := Geometry{Tapes: 3, DomainsPerTape: 64, PortsPerTape: 1}
	if got := g.Words(); got != 192 {
		t.Errorf("Words() = %d, want 192", got)
	}
}

func TestSpreadPortsSinglePortCentered(t *testing.T) {
	ports := SpreadPorts(64, 1)
	if len(ports) != 1 || ports[0] != 32 {
		t.Errorf("SpreadPorts(64,1) = %v, want [32]", ports)
	}
}

func TestSpreadPortsEven(t *testing.T) {
	ports := SpreadPorts(64, 2)
	want := []int{16, 48}
	if len(ports) != 2 || ports[0] != want[0] || ports[1] != want[1] {
		t.Errorf("SpreadPorts(64,2) = %v, want %v", ports, want)
	}
}

func TestSpreadPortsProperties(t *testing.T) {
	// For any valid (n, k): k positions, strictly ascending, in range.
	f := func(n8, k8 uint8) bool {
		n := int(n8%200) + 1
		k := int(k8)%n + 1
		ports := SpreadPorts(n, k)
		if len(ports) != k {
			return false
		}
		for i, p := range ports {
			if p < 0 || p >= n {
				return false
			}
			if i > 0 && ports[i-1] >= p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpreadPortsPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SpreadPorts(0,1) did not panic")
		}
	}()
	SpreadPorts(0, 1)
}

func TestPortPositionsMatchSpread(t *testing.T) {
	g := Geometry{Tapes: 1, DomainsPerTape: 100, PortsPerTape: 4}
	got := g.PortPositions()
	want := SpreadPorts(100, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PortPositions = %v, want %v", got, want)
		}
	}
}
