// Package cache models a small SRAM buffer in front of the DWM
// scratchpad, as DWM architecture proposals commonly assume: hits are
// served by SRAM and never reach the tapes, so the DWM only sees the miss
// and write-back stream. Filtering a trace through the cache answers the
// question of whether data placement still matters once cheap reuse has
// been absorbed.
//
// The model is word-granular (one item per line), write-back and
// write-allocate, with two organizations: fully associative LRU and
// direct mapped.
package cache

import (
	"fmt"

	"repro/internal/trace"
)

// Stats summarizes one filtering pass.
type Stats struct {
	// Hits and Misses count trace accesses by cache outcome.
	Hits, Misses int64
	// Writebacks counts dirty evictions (each adds a DWM write).
	Writebacks int64
}

// HitRate returns the fraction of accesses served by the cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Organization selects the cache structure.
type Organization int

const (
	// LRU is fully associative with least-recently-used replacement.
	LRU Organization = iota
	// DirectMapped maps item i to set i mod capacity.
	DirectMapped
)

// Filter runs the trace through a cache of the given capacity (in items)
// and returns the DWM-visible access stream: a read per read miss, and a
// write per dirty eviction (the write-back), including a final flush of
// dirty lines in ascending item order. Write misses allocate without
// fetching (lines are single words, so nothing needs to be read), which
// is why they produce no immediate DWM access. Capacity zero returns a
// copy of the input (no cache). The filtered trace preserves the item
// space of the original.
func Filter(t *trace.Trace, capacity int, org Organization) (*trace.Trace, Stats, error) {
	if err := t.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("cache: %w", err)
	}
	if capacity < 0 {
		return nil, Stats{}, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	out := trace.New(t.Name+" (cache-filtered)", t.NumItems)
	if capacity == 0 {
		out.Accesses = append(out.Accesses, t.Accesses...)
		return out, Stats{Misses: int64(t.Len())}, nil
	}
	var st Stats
	switch org {
	case LRU:
		st = filterLRU(t, capacity, out)
	case DirectMapped:
		st = filterDirect(t, capacity, out)
	default:
		return nil, Stats{}, fmt.Errorf("cache: unknown organization %d", org)
	}
	return out, st, nil
}

// filterLRU is the fully associative pass. The LRU list is a hand-rolled
// doubly linked list over item IDs to keep the hot loop allocation free.
func filterLRU(t *trace.Trace, capacity int, out *trace.Trace) Stats {
	var st Stats
	n := t.NumItems
	next := make([]int, n) // LRU list links, -1 = nil
	prev := make([]int, n)
	inCache := make([]bool, n)
	dirty := make([]bool, n)
	head, tail := -1, -1 // head = most recent
	size := 0

	unlink := func(v int) {
		if prev[v] >= 0 {
			next[prev[v]] = next[v]
		} else {
			head = next[v]
		}
		if next[v] >= 0 {
			prev[next[v]] = prev[v]
		} else {
			tail = prev[v]
		}
	}
	pushFront := func(v int) {
		prev[v], next[v] = -1, head
		if head >= 0 {
			prev[head] = v
		}
		head = v
		if tail < 0 {
			tail = v
		}
	}

	for _, a := range t.Accesses {
		v := a.Item
		if inCache[v] {
			st.Hits++
			unlink(v)
			pushFront(v)
			if a.Write {
				dirty[v] = true
			}
			continue
		}
		st.Misses++
		if !a.Write {
			out.Read(v) // read misses fetch from the DWM
		}
		if size == capacity {
			victim := tail
			unlink(victim)
			inCache[victim] = false
			size--
			if dirty[victim] {
				st.Writebacks++
				out.Write(victim)
				dirty[victim] = false
			}
		}
		inCache[v] = true
		dirty[v] = a.Write
		pushFront(v)
		size++
	}
	// Final flush of dirty lines, ascending item order for determinism.
	for v := 0; v < n; v++ {
		if inCache[v] && dirty[v] {
			st.Writebacks++
			out.Write(v)
		}
	}
	return st
}

// filterDirect is the direct-mapped pass: item i lives in set i mod
// capacity.
func filterDirect(t *trace.Trace, capacity int, out *trace.Trace) Stats {
	var st Stats
	line := make([]int, capacity) // resident item per set, -1 empty
	dirty := make([]bool, capacity)
	for i := range line {
		line[i] = -1
	}
	for _, a := range t.Accesses {
		v := a.Item
		set := v % capacity
		if line[set] == v {
			st.Hits++
			if a.Write {
				dirty[set] = true
			}
			continue
		}
		st.Misses++
		if !a.Write {
			out.Read(v) // read misses fetch from the DWM
		}
		if line[set] >= 0 && dirty[set] {
			st.Writebacks++
			out.Write(line[set])
		}
		line[set] = v
		dirty[set] = a.Write
	}
	// Final flush of dirty lines, ascending set order for determinism.
	for set := 0; set < capacity; set++ {
		if line[set] >= 0 && dirty[set] {
			st.Writebacks++
			out.Write(line[set])
		}
	}
	return st
}
