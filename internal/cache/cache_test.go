package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/workload"
)

func readTrace(n int, seq ...int) *trace.Trace {
	t := trace.New("t", n)
	for _, it := range seq {
		t.Read(it)
	}
	return t
}

func TestFilterZeroCapacityIsIdentity(t *testing.T) {
	tr := readTrace(4, 0, 1, 2, 3, 0)
	out, st, err := Filter(tr, 0, LRU)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != tr.Len() || st.Hits != 0 || st.Misses != int64(tr.Len()) {
		t.Errorf("out len %d, stats %+v", out.Len(), st)
	}
}

func TestFilterRejectsBadInput(t *testing.T) {
	bad := trace.New("bad", 1)
	bad.Read(5)
	if _, _, err := Filter(bad, 4, LRU); err == nil {
		t.Error("invalid trace accepted")
	}
	good := readTrace(2, 0)
	if _, _, err := Filter(good, -1, LRU); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, _, err := Filter(good, 2, Organization(9)); err == nil {
		t.Error("unknown organization accepted")
	}
}

func TestLRUHitsOnReuse(t *testing.T) {
	// Capacity 2, sequence a b a b: two cold misses, two hits.
	tr := readTrace(3, 0, 1, 0, 1)
	out, st, err := Filter(tr, 2, LRU)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 2 || st.Misses != 2 || st.Writebacks != 0 {
		t.Errorf("stats %+v", st)
	}
	if out.Len() != 2 { // two read misses
		t.Errorf("filtered len %d", out.Len())
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	// Capacity 2: a b c -> evict a; then a misses again.
	tr := readTrace(3, 0, 1, 2, 0)
	_, st, err := Filter(tr, 2, LRU)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 0 || st.Misses != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestWriteMissesProduceNoFetch(t *testing.T) {
	tr := trace.New("w", 2)
	tr.Write(0)
	tr.Write(1)
	out, st, err := Filter(tr, 2, LRU)
	if err != nil {
		t.Fatal(err)
	}
	// No DWM reads; two dirty lines flushed at the end.
	if st.Misses != 2 || st.Writebacks != 2 {
		t.Errorf("stats %+v", st)
	}
	r, w := out.ReadWriteCounts()
	if r != 0 || w != 2 {
		t.Errorf("filtered rw = %d,%d", r, w)
	}
}

func TestDirtyEvictionEmitsWriteback(t *testing.T) {
	// Capacity 1: write 0, then read 1 evicts dirty 0.
	tr := trace.New("wb", 2)
	tr.Write(0)
	tr.Read(1)
	out, st, err := Filter(tr, 1, LRU)
	if err != nil {
		t.Fatal(err)
	}
	if st.Writebacks != 1 {
		t.Errorf("stats %+v", st)
	}
	// Stream: read miss of 1, write-back of 0 (order: read first since
	// the writeback happens at eviction after the miss is recorded).
	if out.Len() != 2 {
		t.Fatalf("filtered len %d: %+v", out.Len(), out.Accesses)
	}
	if out.Accesses[0] != (trace.Access{Item: 1}) {
		t.Errorf("first access %+v", out.Accesses[0])
	}
	if out.Accesses[1] != (trace.Access{Item: 0, Write: true}) {
		t.Errorf("second access %+v", out.Accesses[1])
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	// Capacity 2: items 0 and 2 share set 0 and thrash.
	tr := readTrace(3, 0, 2, 0, 2)
	_, st, err := Filter(tr, 2, DirectMapped)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 0 || st.Misses != 4 {
		t.Errorf("stats %+v", st)
	}
	// Fully associative LRU of the same size has no conflicts.
	_, st2, err := Filter(tr, 2, LRU)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Hits != 2 {
		t.Errorf("LRU stats %+v", st2)
	}
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate not 0")
	}
	if hr := (Stats{Hits: 3, Misses: 1}).HitRate(); hr != 0.75 {
		t.Errorf("hit rate %g", hr)
	}
}

// Property: filtered trace is valid, never longer than reads+2*writes of
// the original, and a larger LRU cache never hits less.
func TestFilterProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		tr := trace.New("p", n)
		for i := 0; i < 500; i++ {
			if rng.Intn(3) == 0 {
				tr.Write(rng.Intn(n))
			} else {
				tr.Read(rng.Intn(n))
			}
		}
		small, stSmall, err := Filter(tr, 4, LRU)
		if err != nil || small.Validate() != nil {
			return false
		}
		big, stBig, err := Filter(tr, 16, LRU)
		if err != nil || big.Validate() != nil {
			return false
		}
		if stBig.Hits < stSmall.Hits {
			return false
		}
		return big.Len() <= small.Len()+16 // flush can differ by capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: cache with capacity >= working set leaves only cold misses
// plus the final flush.
func TestFullCapacityOnlyColdMisses(t *testing.T) {
	tr := workload.Zipf(32, 4000, 1.2, 5)
	_, st, err := Filter(tr, 32, LRU)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != int64(len(tr.Touched())) {
		t.Errorf("misses %d, want %d cold misses", st.Misses, len(tr.Touched()))
	}
	if st.Writebacks != 0 { // Zipf workload is read-only
		t.Errorf("writebacks %d", st.Writebacks)
	}
}
