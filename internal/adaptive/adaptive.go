// Package adaptive implements online (runtime) data reorganization for
// domain wall memories, the natural extension of the paper's static
// placement: when the access distribution drifts at runtime, the
// controller migrates items toward the port between accesses.
//
// Migrations are not free — each one is performed through the real device
// model, paying the shifts, reads, and writes it actually requires — so
// the experiments can answer the honest question: does online
// reorganization recover more shifts than its own overhead costs?
//
// Two policies are provided besides the static no-op:
//
//   - Transpose: after serving an access, swap the item one slot closer
//     to the port (the tape analog of the transposition rule for
//     self-organizing lists). Cheap, incremental, and drift-tracking.
//   - Epoch: count accesses and, every epoch, physically rebuild the
//     organ-pipe layout for the observed counts (a batch reorganizer).
//
// The package operates on single-tape devices, matching the single-tape
// scope of the static pipeline it extends.
package adaptive

import (
	"fmt"

	"repro/internal/dwm"
	"repro/internal/layout"
	"repro/internal/trace"
)

// Result aggregates an adaptive simulation run.
type Result struct {
	// Counters is the total device accounting, including migrations.
	Counters dwm.Counters
	// AccessShifts is the part of Counters.Shifts spent serving the
	// trace itself.
	AccessShifts int64
	// MigrationShifts is the part spent on reorganization.
	MigrationShifts int64
	// Migrations is the number of item moves performed.
	Migrations int64
	// LatencyNS and EnergyPJ are derived from Counters.
	LatencyNS float64
	EnergyPJ  float64
}

// Policy is an online reorganization rule.
type Policy interface {
	// Name identifies the policy in tables.
	Name() string
	// AfterAccess runs after each served access and may migrate items
	// through the mover.
	AfterAccess(m *Mover, item int) error
}

// Simulator executes traces on a single-tape device while a Policy
// reorganizes the layout online.
type Simulator struct {
	dev    *dwm.Device
	tape   *dwm.Tape
	port   int
	pos    layout.Placement // item -> slot, mutated by migrations
	itemAt []int            // slot -> item, -1 if free
	pol    Policy

	accessShifts    int64
	migrationShifts int64
	migrations      int64
}

// NewSimulator builds an adaptive simulator. The device must have exactly
// one tape and one port; the placement must be valid for the tape.
func NewSimulator(dev *dwm.Device, p layout.Placement, pol Policy) (*Simulator, error) {
	g := dev.Geometry()
	if g.Tapes != 1 {
		return nil, fmt.Errorf("adaptive: device has %d tapes, want 1", g.Tapes)
	}
	if g.PortsPerTape != 1 {
		return nil, fmt.Errorf("adaptive: device has %d ports, want 1", g.PortsPerTape)
	}
	if err := p.Validate(g.DomainsPerTape); err != nil {
		return nil, fmt.Errorf("adaptive: %w", err)
	}
	tape, err := dev.Tape(0)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		dev:    dev,
		tape:   tape,
		port:   g.PortPositions()[0],
		pos:    p.Clone(),
		itemAt: make([]int, g.DomainsPerTape),
		pol:    pol,
	}
	for i := range s.itemAt {
		s.itemAt[i] = -1
	}
	for item, slot := range s.pos {
		s.itemAt[slot] = item
	}
	return s, nil
}

// Placement returns a copy of the current (possibly migrated) layout.
func (s *Simulator) Placement() layout.Placement { return s.pos.Clone() }

// Run serves the trace, letting the policy reorganize after every access,
// and returns the accounting for this run.
func (s *Simulator) Run(t *trace.Trace) (Result, error) {
	if err := t.Validate(); err != nil {
		return Result{}, fmt.Errorf("adaptive: %w", err)
	}
	if t.NumItems > len(s.pos) {
		return Result{}, fmt.Errorf("adaptive: trace has %d items, placement covers %d",
			t.NumItems, len(s.pos))
	}
	before := s.dev.Counters()
	s.accessShifts, s.migrationShifts, s.migrations = 0, 0, 0
	m := &Mover{sim: s}
	for i, a := range t.Accesses {
		slot := s.pos[a.Item]
		var shifts int
		var err error
		if a.Write {
			shifts, err = s.tape.Write(slot, uint64(i)+1)
		} else {
			_, shifts, err = s.tape.Read(slot)
		}
		if err != nil {
			return Result{}, err
		}
		s.accessShifts += int64(shifts)
		if s.pol != nil {
			if err := s.pol.AfterAccess(m, a.Item); err != nil {
				return Result{}, err
			}
		}
	}
	after := s.dev.Counters()
	res := Result{
		Counters: dwm.Counters{
			Shifts: after.Shifts - before.Shifts,
			Reads:  after.Reads - before.Reads,
			Writes: after.Writes - before.Writes,
		},
		AccessShifts:    s.accessShifts,
		MigrationShifts: s.migrationShifts,
		Migrations:      s.migrations,
	}
	p := s.dev.Params()
	res.LatencyNS = res.Counters.LatencyNS(p)
	res.EnergyPJ = res.Counters.EnergyPJ(p)
	return res, nil
}

// Mover is the migration interface handed to policies. Every operation is
// charged through the device model.
type Mover struct {
	sim *Simulator
}

// Port returns the tape's port slot.
func (m *Mover) Port() int { return m.sim.port }

// SlotOf returns the current slot of an item.
func (m *Mover) SlotOf(item int) int { return m.sim.pos[item] }

// Items returns the number of placed items.
func (m *Mover) Items() int { return len(m.sim.pos) }

// TapeLen returns the number of slots on the tape.
func (m *Mover) TapeLen() int { return len(m.sim.itemAt) }

// Swap exchanges the contents of two slots, paying the real device cost
// (reading both words and writing them back exchanged). Empty slots are
// allowed; swapping a slot with itself is a no-op.
func (m *Mover) Swap(slotA, slotB int) error {
	if slotA == slotB {
		return nil
	}
	s := m.sim
	migBefore := s.tape.Shifts()
	va, sh, err := s.tape.Read(slotA)
	if err != nil {
		return err
	}
	_ = sh
	vb, _, err := s.tape.Read(slotB)
	if err != nil {
		return err
	}
	if _, err := s.tape.Write(slotA, vb); err != nil {
		return err
	}
	if _, err := s.tape.Write(slotB, va); err != nil {
		return err
	}
	s.migrationShifts += s.tape.Shifts() - migBefore
	s.migrations++

	ia, ib := s.itemAt[slotA], s.itemAt[slotB]
	s.itemAt[slotA], s.itemAt[slotB] = ib, ia
	if ia >= 0 {
		s.pos[ia] = slotB
	}
	if ib >= 0 {
		s.pos[ib] = slotA
	}
	return nil
}
