package adaptive

import (
	"sort"
)

// Static is the no-op policy: the layout never changes. It is the control
// arm of experiment E10.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// AfterAccess implements Policy (no reorganization).
func (Static) AfterAccess(*Mover, int) error { return nil }

// Transpose moves an accessed item one slot closer to the port by
// swapping it with its neighbor, the tape analog of the transposition
// rule for self-organizing lists. Frequently accessed items drift toward
// the port over time; each step costs one adjacent swap.
type Transpose struct{}

// Name implements Policy.
func (Transpose) Name() string { return "transpose" }

// AfterAccess implements Policy.
func (Transpose) AfterAccess(m *Mover, item int) error {
	slot := m.SlotOf(item)
	port := m.Port()
	switch {
	case slot == port:
		return nil
	case slot > port:
		return m.Swap(slot, slot-1)
	default:
		return m.Swap(slot, slot+1)
	}
}

// Epoch counts accesses and, every Window accesses, physically rebuilds
// the organ-pipe layout for the counts observed in the window, then
// resets the counts. Reorganization pays the real device cost of every
// swap performed.
type Epoch struct {
	// Window is the epoch length in accesses; 0 selects 1024.
	Window int

	seen   int
	counts []int64
}

// Name implements Policy.
func (e *Epoch) Name() string { return "epoch" }

// AfterAccess implements Policy.
func (e *Epoch) AfterAccess(m *Mover, item int) error {
	if e.counts == nil {
		e.counts = make([]int64, m.Items())
	}
	e.counts[item]++
	e.seen++
	window := e.Window
	if window <= 0 {
		window = 1024
	}
	if e.seen < window {
		return nil
	}
	e.seen = 0
	defer func() {
		for i := range e.counts {
			e.counts[i] = 0
		}
	}()

	// Target: organ-pipe by window counts — hottest at the port slot,
	// alternating outward. Only the order of *slots by distance* matters.
	n := m.Items()
	tapeLen := m.TapeLen()
	port := m.Port()
	slots := make([]int, 0, n)
	slots = append(slots, port)
	for d := 1; len(slots) < n; d++ {
		if port-d >= 0 {
			slots = append(slots, port-d)
		}
		if port+d < tapeLen && len(slots) < n {
			slots = append(slots, port+d)
		}
	}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	sort.SliceStable(items, func(a, b int) bool {
		if e.counts[items[a]] != e.counts[items[b]] {
			return e.counts[items[a]] > e.counts[items[b]]
		}
		return items[a] < items[b]
	})
	// Realize the permutation with swaps: put items[rank] into
	// slots[rank], following displacement cycles.
	for rank, item := range items {
		target := slots[rank]
		for m.SlotOf(item) != target {
			if err := m.Swap(m.SlotOf(item), target); err != nil {
				return err
			}
		}
	}
	return nil
}
