package adaptive

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dwm"
	"repro/internal/layout"
	"repro/internal/trace"
	"repro/internal/workload"
)

func singleTapeDevice(t *testing.T, slots int) *dwm.Device {
	t.Helper()
	return mustDevice(slots)
}

// mustDevice builds a 1-tape, 1-port device; usable from quick.Check
// property functions that have no *testing.T.
func mustDevice(slots int) *dwm.Device {
	d, err := dwm.NewDevice(dwm.Geometry{Tapes: 1, DomainsPerTape: slots, PortsPerTape: 1},
		dwm.DefaultParams())
	if err != nil {
		panic(err)
	}
	return d
}

func TestNewSimulatorValidation(t *testing.T) {
	multi, err := dwm.NewDevice(dwm.Geometry{Tapes: 2, DomainsPerTape: 8, PortsPerTape: 1},
		dwm.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulator(multi, layout.Identity(4), Static{}); err == nil {
		t.Error("multi-tape device accepted")
	}
	twoPort, err := dwm.NewDevice(dwm.Geometry{Tapes: 1, DomainsPerTape: 8, PortsPerTape: 2},
		dwm.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulator(twoPort, layout.Identity(4), Static{}); err == nil {
		t.Error("multi-port device accepted")
	}
	if _, err := NewSimulator(singleTapeDevice(t, 4), layout.Placement{0, 0}, Static{}); err == nil {
		t.Error("invalid placement accepted")
	}
}

func TestStaticMatchesPlainSimulation(t *testing.T) {
	// With the Static policy the adaptive simulator must produce exactly
	// the shift counts of the plain device walk.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		tr := trace.New("p", n)
		for i := 0; i < 300; i++ {
			tr.Read(rng.Intn(n))
		}
		dev := mustDevice(n)
		p, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		s, err := NewSimulator(dev, p, Static{})
		if err != nil {
			return false
		}
		res, err := s.Run(tr)
		if err != nil {
			return false
		}
		if res.Migrations != 0 || res.MigrationShifts != 0 {
			return false
		}
		// Compare with a fresh plain walk.
		dev2 := mustDevice(n)
		tape, err := dev2.Tape(0)
		if err != nil {
			return false
		}
		var want int64
		for _, a := range tr.Accesses {
			_, sh, err := tape.Read(p[a.Item])
			if err != nil {
				return false
			}
			want += int64(sh)
		}
		return res.Counters.Shifts == want && res.AccessShifts == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransposePullsHotItemToPort(t *testing.T) {
	// One item accessed repeatedly must end up at the port slot.
	n := 16
	dev := singleTapeDevice(t, n)
	port := dev.Geometry().PortPositions()[0]
	p := layout.Identity(n)
	s, err := NewSimulator(dev, p, Transpose{})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("hot", n)
	hot := 0 // starts at slot 0, far from the center port
	for i := 0; i < 50; i++ {
		tr.Read(hot)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Placement()[hot]; got != port {
		t.Errorf("hot item at slot %d, want port %d", got, port)
	}
	if res.Migrations == 0 || res.MigrationShifts == 0 {
		t.Errorf("no migration accounting: %+v", res)
	}
	if res.Counters.Shifts != res.AccessShifts+res.MigrationShifts {
		t.Errorf("shift split %d+%d != total %d",
			res.AccessShifts, res.MigrationShifts, res.Counters.Shifts)
	}
}

func TestTransposePlacementStaysPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		tr := trace.New("p", n)
		for i := 0; i < 500; i++ {
			tr.Read(rng.Intn(n))
		}
		dev := mustDevice(n)
		s, err := NewSimulator(dev, layout.Identity(n), Transpose{})
		if err != nil {
			return false
		}
		if _, err := s.Run(tr); err != nil {
			return false
		}
		return s.Placement().Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEpochRebuildsOrganPipe(t *testing.T) {
	n := 8
	dev := singleTapeDevice(t, n)
	port := dev.Geometry().PortPositions()[0]
	pol := &Epoch{Window: 100}
	s, err := NewSimulator(dev, layout.Identity(n), pol)
	if err != nil {
		t.Fatal(err)
	}
	// 100 accesses: item 7 hottest, then 6, others cold.
	tr := trace.New("skew", n)
	for i := 0; i < 60; i++ {
		tr.Read(7)
	}
	for i := 0; i < 30; i++ {
		tr.Read(6)
	}
	for i := 0; i < 10; i++ {
		tr.Read(i % 6)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Placement()
	if p[7] != port {
		t.Errorf("hottest item at slot %d, want port %d", p[7], port)
	}
	if d := p[6] - port; d != 1 && d != -1 {
		t.Errorf("second-hottest at distance %d from port", d)
	}
	if err := p.Validate(n); err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Error("epoch rebuild performed no migrations")
	}
}

func TestEpochPlacementStaysPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		tr := trace.New("p", n)
		for i := 0; i < 700; i++ {
			tr.Read(rng.Intn(n))
		}
		dev := mustDevice(n)
		s, err := NewSimulator(dev, layout.Identity(n), &Epoch{Window: 128})
		if err != nil {
			return false
		}
		if _, err := s.Run(tr); err != nil {
			return false
		}
		return s.Placement().Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveBeatsStaticOnPhasedWorkload(t *testing.T) {
	// On a workload whose hot set rotates, transposition must beat the
	// static organ-pipe layout tuned for the aggregate distribution,
	// even after paying for its own migrations.
	tr := workload.Phased(64, 16384, 8, 1.3, 3)
	static, err := core.OrganPipe(tr)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pol Policy) Result {
		dev := singleTapeDevice(t, tr.NumItems)
		s, err := NewSimulator(dev, static, pol)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	staticRes := run(Static{})
	transRes := run(Transpose{})
	if transRes.Counters.Shifts >= staticRes.Counters.Shifts {
		t.Errorf("transpose (%d shifts incl. %d migration) not better than static (%d)",
			transRes.Counters.Shifts, transRes.MigrationShifts, staticRes.Counters.Shifts)
	}
}

func TestMoverSwapSelfNoop(t *testing.T) {
	dev := singleTapeDevice(t, 8)
	s, err := NewSimulator(dev, layout.Identity(8), Static{})
	if err != nil {
		t.Fatal(err)
	}
	m := &Mover{sim: s}
	if err := m.Swap(3, 3); err != nil {
		t.Fatal(err)
	}
	if s.migrations != 0 {
		t.Error("self-swap counted as migration")
	}
}

func TestRunRejectsBadTrace(t *testing.T) {
	dev := singleTapeDevice(t, 8)
	s, err := NewSimulator(dev, layout.Identity(4), Static{})
	if err != nil {
		t.Fatal(err)
	}
	big := trace.New("big", 9)
	big.Read(8)
	if _, err := s.Run(big); err == nil {
		t.Error("oversized trace accepted")
	}
}
