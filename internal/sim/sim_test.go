package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/layout"
	"repro/internal/trace"
	"repro/internal/workload"
)

func device(t *testing.T, tapes, slots, ports int) *dwm.Device {
	t.Helper()
	d, err := dwm.NewDevice(dwm.Geometry{Tapes: tapes, DomainsPerTape: slots, PortsPerTape: ports},
		dwm.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidatesPlacement(t *testing.T) {
	d := device(t, 1, 8, 1)
	bad := layout.MultiPlacement{Tape: []int{0, 0}, Slot: []int{1, 1}}
	if _, err := New(d, bad, HeadStay); err == nil {
		t.Error("colliding placement accepted")
	}
	if _, err := NewSingleTape(device(t, 2, 8, 1), layout.Identity(4), HeadStay); err == nil {
		t.Error("multi-tape device accepted by NewSingleTape")
	}
}

func TestRunCountsAccesses(t *testing.T) {
	d := device(t, 1, 16, 1)
	s, err := NewSingleTape(d, layout.Identity(8), HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("t", 8)
	tr.Read(0)
	tr.Write(3)
	tr.Read(3)
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 3 || res.Counters.Reads != 2 || res.Counters.Writes != 1 {
		t.Errorf("result = %+v", res)
	}
	if res.LatencyNS <= 0 || res.EnergyPJ <= 0 {
		t.Errorf("latency/energy not accumulated: %+v", res)
	}
}

func TestRunMatchesAnalyticSinglePort(t *testing.T) {
	// The simulator's shift count must equal cost.MultiPort exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		slots := n + rng.Intn(8)
		ports := rng.Intn(3) + 1
		if ports > slots {
			ports = slots
		}
		g := dwm.Geometry{Tapes: 1, DomainsPerTape: slots, PortsPerTape: ports}
		dev, err := dwm.NewDevice(g, dwm.DefaultParams())
		if err != nil {
			return false
		}
		// Random injective placement into slots.
		slotPerm := rng.Perm(slots)
		p := make(layout.Placement, n)
		copy(p, slotPerm[:n])
		tr := trace.New("p", n)
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 {
				tr.Read(rng.Intn(n))
			} else {
				tr.Write(rng.Intn(n))
			}
		}
		s, err := NewSingleTape(dev, p, HeadStay)
		if err != nil {
			return false
		}
		res, err := s.Run(tr)
		if err != nil {
			return false
		}
		want, err := cost.MultiPort(tr.Items(), p, g.PortPositions(), slots)
		if err != nil {
			return false
		}
		return res.Counters.Shifts == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunMatchesAnalyticMultiTape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tapes := rng.Intn(3) + 2
		slots := 8
		n := rng.Intn(tapes*slots-1) + 1
		g := dwm.Geometry{Tapes: tapes, DomainsPerTape: slots, PortsPerTape: 1}
		dev, err := dwm.NewDevice(g, dwm.DefaultParams())
		if err != nil {
			return false
		}
		// Random valid multi-placement.
		locs := rng.Perm(tapes * slots)[:n]
		mp := layout.NewMultiPlacement(n)
		for i, loc := range locs {
			mp.Tape[i] = loc / slots
			mp.Slot[i] = loc % slots
		}
		tr := trace.New("p", n)
		for i := 0; i < 400; i++ {
			tr.Read(rng.Intn(n))
		}
		s, err := New(dev, mp, HeadStay)
		if err != nil {
			return false
		}
		res, err := s.Run(tr)
		if err != nil {
			return false
		}
		want, err := cost.MultiTape(tr.Items(), mp, tapes, slots, g.PortPositions())
		if err != nil {
			return false
		}
		return res.Counters.Shifts == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunPerTapeSumsToTotal(t *testing.T) {
	d := device(t, 4, 8, 1)
	mp := layout.NewMultiPlacement(16)
	for i := 0; i < 16; i++ {
		mp.Tape[i] = i % 4
		mp.Slot[i] = i / 4
	}
	s, err := New(d, mp, HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Uniform(16, 500, 3)
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	var sum dwm.Counters
	for _, c := range res.PerTape {
		sum = sum.Add(c)
	}
	if sum != res.Counters {
		t.Errorf("per-tape sum %+v != total %+v", sum, res.Counters)
	}
}

func TestRunIsPerRunNotCumulative(t *testing.T) {
	d := device(t, 1, 8, 1)
	s, err := NewSingleTape(d, layout.Identity(8), HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("t", 8)
	tr.Read(7)
	tr.Read(0)
	r1, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Counters.Reads != r1.Counters.Reads {
		t.Errorf("second run reads %d != first %d", r2.Counters.Reads, r1.Counters.Reads)
	}
	// Port at slot 4. Run 1 from home: |7-4| + |0-7| = 10. Run 2 starts
	// with the head parked at slot 0 (offset -4): |7-0| + 7 = 14. If Run
	// returned cumulative counters, r2 would report 24.
	if r1.Counters.Shifts != 10 {
		t.Errorf("first run shifts = %d, want 10", r1.Counters.Shifts)
	}
	if r2.Counters.Shifts != 14 {
		t.Errorf("second run shifts = %d, want 14 (per-run, head parked)", r2.Counters.Shifts)
	}
}

func TestHeadReturnChargesHoming(t *testing.T) {
	dStay := device(t, 1, 16, 1)
	dRet := device(t, 1, 16, 1)
	p := layout.Identity(16)
	tr := trace.New("t", 16)
	tr.Read(15) // park far from home

	stay, err := NewSingleTape(dStay, p, HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := NewSingleTape(dRet, p, HeadReturn)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stay.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ret.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Counters.Shifts <= rs.Counters.Shifts {
		t.Errorf("HeadReturn (%d shifts) should exceed HeadStay (%d)",
			rr.Counters.Shifts, rs.Counters.Shifts)
	}
	// After homing, a rerun costs exactly the same as the first run.
	rr2, err := ret.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Counters.Shifts != rr.Counters.Shifts {
		t.Errorf("homed rerun shifts %d != first %d", rr2.Counters.Shifts, rr.Counters.Shifts)
	}
}

func TestRunRejectsForeignTrace(t *testing.T) {
	d := device(t, 1, 8, 1)
	s, err := NewSingleTape(d, layout.Identity(4), HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	big := trace.New("big", 9)
	big.Read(8)
	if _, err := s.Run(big); err == nil {
		t.Error("trace larger than placement accepted")
	}
	bad := trace.New("bad", 2)
	bad.Read(5)
	if _, err := s.Run(bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestAddressLookup(t *testing.T) {
	d := device(t, 2, 8, 1)
	mp := layout.MultiPlacement{Tape: []int{1, 0}, Slot: []int{3, 7}}
	s, err := New(d, mp, HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Address(0)
	if err != nil || a != (dwm.Address{Tape: 1, Slot: 3}) {
		t.Errorf("Address(0) = %+v, %v", a, err)
	}
	if _, err := s.Address(5); err == nil {
		t.Error("bad item accepted")
	}
	if s.Device() != d {
		t.Error("Device() identity lost")
	}
}

func TestShiftDistribution(t *testing.T) {
	// Port at slot 4 of an 8-slot tape, identity placement.
	// Accesses 4 (0 shifts), 0 (4), 0 (0), 7 (7): sorted [0,0,4,7].
	d := device(t, 1, 8, 1)
	s, err := NewSingleTape(d, layout.Identity(8), HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("t", 8)
	for _, it := range []int{4, 0, 0, 7} {
		tr.Read(it)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	sd := res.ShiftDist
	if sd.Max != 7 {
		t.Errorf("Max = %d, want 7", sd.Max)
	}
	if sd.P50 != 0 { // nearest-rank: index ceil(0.5*4)-1 = 1 -> 0
		t.Errorf("P50 = %d, want 0", sd.P50)
	}
	if sd.Mean != 11.0/4 {
		t.Errorf("Mean = %g, want 2.75", sd.Mean)
	}
	if sd.P95 != 7 { // sorted [0,0,4,7], nearest-rank index ceil(0.95*4)-1 = 3 -> 7
		t.Errorf("P95 = %d, want 7", sd.P95)
	}
	// Distribution totals must agree with the counter.
	if int64(sd.Mean*float64(res.Accesses)+0.5) != res.Counters.Shifts {
		t.Errorf("mean*n = %g inconsistent with total %d", sd.Mean*4, res.Counters.Shifts)
	}
}

// Regression for the percentile floor bias: distribution must use
// nearest-rank (index ceil(q·n)-1), not int(q·(n-1)), which picked an
// element below the true percentile on small samples.
func TestDistributionNearestRank(t *testing.T) {
	cases := []struct {
		name     string
		in       []int
		p50, p95 int
	}{
		{"single", []int{9}, 9, 9},
		{"pair", []int{1, 5}, 1, 5},
		// Old floor form gave P95 = 4 here (index int(0.95*3) = 2).
		{"four", []int{7, 0, 4, 0}, 0, 7},
		{"five", []int{10, 20, 30, 40, 50}, 30, 50},
		// 20 samples: P95 is the 19th order statistic (ceil(19)-1 = 18),
		// where the floor form picked index int(0.95*19) = 18 too — the
		// two agree on larger samples.
		{"twenty", func() []int {
			xs := make([]int, 20)
			for i := range xs {
				xs[i] = i + 1
			}
			return xs
		}(), 10, 19},
	}
	for _, c := range cases {
		sd := distribution(append([]int(nil), c.in...))
		if sd.P50 != c.p50 {
			t.Errorf("%s: P50 = %d, want %d", c.name, sd.P50, c.p50)
		}
		if sd.P95 != c.p95 {
			t.Errorf("%s: P95 = %d, want %d", c.name, sd.P95, c.p95)
		}
	}
}

func TestShiftDistributionEmptyTrace(t *testing.T) {
	d := device(t, 1, 8, 1)
	s, err := NewSingleTape(d, layout.Identity(8), HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace.New("empty", 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.ShiftDist != (ShiftDistribution{}) {
		t.Errorf("empty distribution = %+v", res.ShiftDist)
	}
}

func TestDataIntegrityThroughPlacement(t *testing.T) {
	// Writes land in distinct slots: last write per item must be readable.
	d := device(t, 2, 8, 2)
	mp := layout.NewMultiPlacement(10)
	rng := rand.New(rand.NewSource(99))
	locs := rng.Perm(16)[:10]
	for i, loc := range locs {
		mp.Tape[i] = loc / 8
		mp.Slot[i] = loc % 8
	}
	s, err := New(d, mp, HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("w", 10)
	for i := 0; i < 10; i++ {
		tr.Write(i)
	}
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	// Access i wrote value i+1.
	for i := 0; i < 10; i++ {
		addr, err := s.Address(i)
		if err != nil {
			t.Fatal(err)
		}
		tape, err := d.Tape(addr.Tape)
		if err != nil {
			t.Fatal(err)
		}
		v, err := tape.Peek(addr.Slot)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i)+1 {
			t.Errorf("item %d holds %d, want %d", i, v, i+1)
		}
	}
}
