// Package sim executes access traces against the dwm device model under a
// placement and reports the resulting shift, latency, and energy totals.
//
// The simulator is the ground truth of the evaluation: the analytic
// evaluators in internal/cost predict shift counts, and the property tests
// assert that simulation and prediction agree exactly. Latency and energy
// are derived from the device counters using the device's Params, which is
// faithful to how DWM architecture studies report those metrics (shifts
// dominate; reads and writes contribute fixed per-access terms).
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dwm"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Simulator instrumentation (see internal/obs): runs, accesses served,
// and shifts issued, accumulated process-wide across all simulators.
// The shift-distance histogram records every access's shift count —
// the distribution (not the total) is how the placement papers diagnose
// quality, and its tail is what bounds worst-case access latency.
var (
	obsRuns      = obs.GetCounter("sim.runs")
	obsAccesses  = obs.GetCounter("sim.accesses")
	obsShifts    = obs.GetCounter("sim.shifts")
	obsShiftDist = obs.GetHistogram("sim.shift_distance",
		[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512})
)

// HeadPolicy selects what the simulator does with tape heads between
// simulated iterations of Run (ablation E9 compares the options).
type HeadPolicy int

const (
	// HeadStay leaves every head where the last access parked it (the
	// default, matching the analytic cost model).
	HeadStay HeadPolicy = iota
	// HeadReturn shifts every tape back to offset zero after each run,
	// charging those shifts, modeling controllers that re-home tapes.
	HeadReturn
)

// Result aggregates one simulation run.
type Result struct {
	// Shifts, Reads, Writes are the device operation counts.
	Counters dwm.Counters
	// LatencyNS and EnergyPJ are derived from Counters with the device
	// parameters.
	LatencyNS float64
	EnergyPJ  float64
	// Accesses is the number of trace events served.
	Accesses int
	// PerTape breaks the counters down by tape.
	PerTape []dwm.Counters
	// ShiftDist summarizes the per-access shift distance distribution:
	// placement determines not just the total but the tail, and the tail
	// is what bounds worst-case access latency.
	ShiftDist ShiftDistribution
}

// ShiftDistribution summarizes per-access shift distances.
type ShiftDistribution struct {
	Mean float64
	P50  int
	P95  int
	Max  int
}

// distribution computes the summary from the raw per-access counts. The
// input slice is sorted in place — callers that reuse a scratch buffer
// (Run does) must not rely on its order afterwards.
func distribution(perAccess []int) ShiftDistribution {
	if len(perAccess) == 0 {
		return ShiftDistribution{}
	}
	sort.Ints(perAccess)
	var sum int64
	for _, v := range perAccess {
		sum += int64(v)
	}
	// Nearest-rank percentile: the smallest element with at least a q
	// fraction of the sample at or below it, i.e. index ceil(q·n)-1. The
	// earlier floor form int(q·(n-1)) biased P50/P95 low on small
	// samples (e.g. P95 of 4 samples picked index 2, not the 3rd of 4).
	at := func(q float64) int {
		i := int(math.Ceil(q*float64(len(perAccess)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(perAccess) {
			i = len(perAccess) - 1
		}
		return perAccess[i]
	}
	return ShiftDistribution{
		Mean: float64(sum) / float64(len(perAccess)),
		P50:  at(0.50),
		P95:  at(0.95),
		Max:  perAccess[len(perAccess)-1],
	}
}

// Simulator binds a device to a multi-placement.
//
// A Simulator is not safe for concurrent use: it owns mutable device
// state and reuses an internal scratch buffer across Run calls.
type Simulator struct {
	dev *dwm.Device
	mp  layout.MultiPlacement
	pol HeadPolicy
	// scratch is the per-access shift buffer reused by Run; distribution
	// sorts it in place, which is fine because each Run truncates and
	// refills it before reading.
	scratch []int
	// dist buffers this simulator's shift-distance observations and is
	// flushed into the process-wide histogram once per Run.
	dist *obs.LocalHistogram
}

// New builds a simulator. The placement must be valid for the device
// geometry.
func New(dev *dwm.Device, mp layout.MultiPlacement, pol HeadPolicy) (*Simulator, error) {
	g := dev.Geometry()
	if err := mp.Validate(g.Tapes, g.DomainsPerTape); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return &Simulator{dev: dev, mp: mp.Clone(), pol: pol, dist: obsShiftDist.Local()}, nil
}

// NewSingleTape builds a simulator for a single-tape device from a plain
// placement.
func NewSingleTape(dev *dwm.Device, p layout.Placement, pol HeadPolicy) (*Simulator, error) {
	if dev.Geometry().Tapes != 1 {
		return nil, fmt.Errorf("sim: device has %d tapes, want 1", dev.Geometry().Tapes)
	}
	return New(dev, layout.SingleTape(p), pol)
}

// Address returns the device address of an item under the simulator's
// placement.
func (s *Simulator) Address(item int) (dwm.Address, error) {
	if item < 0 || item >= s.mp.Items() {
		return dwm.Address{}, fmt.Errorf("sim: item %d outside [0,%d)", item, s.mp.Items())
	}
	return dwm.Address{Tape: s.mp.Tape[item], Slot: s.mp.Slot[item]}, nil
}

// Run serves every access of the trace in order and returns the totals
// accumulated *by this call* (device counters are snapshotted around the
// run, so repeated runs return per-run results). Reads return whatever the
// device holds; writes store a value derived from the access index so
// that data integrity can be checked by tests.
func (s *Simulator) Run(t *trace.Trace) (Result, error) {
	_, span := obs.StartSpan(context.Background(), "sim.run")
	defer span.End()
	if err := t.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if t.NumItems > s.mp.Items() {
		return Result{}, fmt.Errorf("sim: trace has %d items, placement covers %d",
			t.NumItems, s.mp.Items())
	}
	before := s.dev.Counters()
	beforeTapes := s.dev.TapeCounters()
	if cap(s.scratch) < t.Len() {
		s.scratch = make([]int, 0, t.Len())
	}
	perAccess := s.scratch[:0]
	for i, a := range t.Accesses {
		addr, err := s.Address(a.Item)
		if err != nil {
			return Result{}, err
		}
		var shifts int
		if a.Write {
			if shifts, err = s.dev.Write(addr, uint64(i)+1); err != nil {
				return Result{}, err
			}
		} else if _, shifts, err = s.dev.Read(addr); err != nil {
			return Result{}, err
		}
		perAccess = append(perAccess, shifts)
	}
	if s.pol == HeadReturn {
		s.dev.ResetPositions()
	}
	after := s.dev.Counters()
	afterTapes := s.dev.TapeCounters()

	res := Result{
		Counters: dwm.Counters{
			Shifts: after.Shifts - before.Shifts,
			Reads:  after.Reads - before.Reads,
			Writes: after.Writes - before.Writes,
		},
		Accesses: t.Len(),
		PerTape:  make([]dwm.Counters, len(afterTapes)),
	}
	for i := range afterTapes {
		res.PerTape[i] = dwm.Counters{
			Shifts: afterTapes[i].Shifts - beforeTapes[i].Shifts,
			Reads:  afterTapes[i].Reads - beforeTapes[i].Reads,
			Writes: afterTapes[i].Writes - beforeTapes[i].Writes,
		}
	}
	p := s.dev.Params()
	res.LatencyNS = res.Counters.LatencyNS(p)
	res.EnergyPJ = res.Counters.EnergyPJ(p)
	// Feed the process-wide distance histogram before distribution sorts
	// the scratch buffer, batching through the simulator's local buffer
	// so the per-run cost is one flush, not len(trace) shared atomic
	// adds.
	for _, d := range perAccess {
		s.dist.Observe(int64(d))
	}
	s.dist.Flush()
	res.ShiftDist = distribution(perAccess)
	s.scratch = perAccess
	obsRuns.Inc()
	obsAccesses.Add(int64(res.Accesses))
	obsShifts.Add(res.Counters.Shifts)
	span.SetAttr("trace", t.Name).
		SetAttr("accesses", res.Accesses).
		SetAttr("shifts", res.Counters.Shifts)
	return res, nil
}

// Device exposes the underlying device (for inspection in tests and
// examples).
func (s *Simulator) Device() *dwm.Device { return s.dev }
