// Package stats provides the small set of summary statistics the
// evaluation harness needs for multi-seed robustness reporting.
package stats

import (
	"fmt"
	"math"
)

// Summary holds the moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes the summary of a non-empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s, nil
}

// String formats the summary as "mean ± stddev [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f [%.1f, %.1f]", s.Mean, s.Stddev, s.Min, s.Max)
}
