// Package stats provides the small set of summary statistics the
// evaluation harness needs for multi-seed robustness reporting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes the summary of a non-empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s, nil
}

// String formats the summary as "mean ± stddev [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f [%.1f, %.1f]", s.Mean, s.Stddev, s.Min, s.Max)
}

// Quantile returns the nearest-rank q-quantile of a non-empty sample:
// the smallest element with at least a q fraction of the sample at or
// below it, i.e. the element of rank ⌈q·n⌉. This is the rank rule the
// simulator's percentile columns and the obs histogram quantiles share,
// so the three layers agree wherever their granularities overlap. The
// input is not modified; q is clamped to [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i], nil
}
