package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1 || s.Mean != 5 || s.Stddev != 0 || s.Min != 5 || s.Max != 5 {
		t.Errorf("summary %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample stddev sqrt(32/7).
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 5 {
		t.Errorf("mean %g", s.Mean)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("stddev %g, want %g", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max %g/%g", s.Min, s.Max)
	}
}

func TestStringFormat(t *testing.T) {
	s, err := Summarize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	if !strings.Contains(out, "2.0 ±") || !strings.Contains(out, "[1.0, 3.0]") {
		t.Errorf("format %q", out)
	}
}

// Properties: mean within [min, max]; stddev non-negative; shifting the
// sample shifts the mean and preserves the stddev.
func TestSummaryProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 || s.Stddev < 0 {
			return false
		}
		shifted := make([]float64, n)
		for i := range xs {
			shifted[i] = xs[i] + 42
		}
		s2, err := Summarize(shifted)
		if err != nil {
			return false
		}
		return math.Abs(s2.Mean-s.Mean-42) < 1e-9 && math.Abs(s2.Stddev-s.Stddev) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
