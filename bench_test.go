package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/workload"
)

// One benchmark per reconstructed table/figure. Each iteration runs the
// full experiment, so these measure end-to-end harness cost and double as
// regression smoke tests (`go test -bench=. -benchmem`).

func benchExperiment(b *testing.B, run func(bench.Config) (*bench.Table, error)) {
	b.Helper()
	cfg := bench.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1Characteristics(b *testing.B) { benchExperiment(b, bench.E1Characteristics) }
func BenchmarkE2MainComparison(b *testing.B)  { benchExperiment(b, bench.E2MainComparison) }
func BenchmarkE3TapeLength(b *testing.B)      { benchExperiment(b, bench.E3TapeLength) }
func BenchmarkE4Ports(b *testing.B)           { benchExperiment(b, bench.E4Ports) }
func BenchmarkE5OptimalityGap(b *testing.B)   { benchExperiment(b, bench.E5OptimalityGap) }
func BenchmarkE6LatencyEnergy(b *testing.B)   { benchExperiment(b, bench.E6LatencyEnergy) }
func BenchmarkE7MultiTape(b *testing.B)       { benchExperiment(b, bench.E7MultiTape) }
func BenchmarkE8Runtime(b *testing.B)         { benchExperiment(b, bench.E8Runtime) }
func BenchmarkE9Ablation(b *testing.B)        { benchExperiment(b, bench.E9Ablation) }
func BenchmarkE10Adaptive(b *testing.B)       { benchExperiment(b, bench.E10Adaptive) }
func BenchmarkE11CacheFilter(b *testing.B)    { benchExperiment(b, bench.E11CacheFilter) }
func BenchmarkE12Robustness(b *testing.B)     { benchExperiment(b, bench.E12Robustness) }
func BenchmarkE13WearLeveling(b *testing.B)   { benchExperiment(b, bench.E13WearLeveling) }
func BenchmarkE14Granularity(b *testing.B)    { benchExperiment(b, bench.E14Granularity) }
func BenchmarkE15TailLatency(b *testing.B)    { benchExperiment(b, bench.E15TailLatency) }
func BenchmarkE16PortPlacement(b *testing.B)  { benchExperiment(b, bench.E16PortPlacement) }
func BenchmarkE17Variation(b *testing.B)      { benchExperiment(b, bench.E17Variation) }
func BenchmarkE18ShiftFaults(b *testing.B)    { benchExperiment(b, bench.E18ShiftFaults) }
func BenchmarkE19Interleaving(b *testing.B)   { benchExperiment(b, bench.E19Interleaving) }
func BenchmarkE20Instruction(b *testing.B)    { benchExperiment(b, bench.E20Instruction) }
func BenchmarkE21Scheduling(b *testing.B)     { benchExperiment(b, bench.E21Scheduling) }
func BenchmarkE22Profile(b *testing.B)        { benchExperiment(b, bench.E22Profile) }

// Micro-benchmarks for the hot paths behind the experiments.

func BenchmarkGreedyChain(b *testing.B) {
	tr := workload.Zipf(256, 8192, 1.2, 1)
	g, err := graph.FromTrace(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyChain(g, core.SeedHeaviestEdge); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoOptFull(b *testing.B) {
	tr := workload.Zipf(128, 4096, 1.2, 1)
	g, err := graph.FromTrace(tr)
	if err != nil {
		b.Fatal(err)
	}
	start, err := core.GreedyChain(g, core.SeedHeaviestEdge)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.TwoOpt(g, start, core.TwoOptOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorSwapDelta(b *testing.B) {
	tr := workload.Zipf(128, 4096, 1.2, 1)
	g, err := graph.FromTrace(tr)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := cost.NewEvaluator(g, layout.Identity(g.N()))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.SwapDelta(i%g.N(), (i*7+3)%g.N())
	}
}

func BenchmarkCostLinear(b *testing.B) {
	tr := workload.Zipf(256, 8192, 1.2, 1)
	g, err := graph.FromTrace(tr)
	if err != nil {
		b.Fatal(err)
	}
	p := layout.Identity(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cost.Linear(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactDP12(b *testing.B) {
	tr := workload.Zipf(12, 3000, 1.2, 1)
	g, err := graph.FromTrace(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ExactDP(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorRun(b *testing.B) {
	tr := workload.FIR(32, 64)
	geom := dwm.Geometry{Tapes: 1, DomainsPerTape: tr.NumItems, PortsPerTape: 1}
	p := layout.Identity(tr.NumItems)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev, err := dwm.NewDevice(geom, dwm.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.NewSingleTape(dev, p, sim.HeadStay)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProposePipeline(b *testing.B) {
	tr := workload.FIR(32, 128)
	g, err := graph.FromTrace(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Propose(tr, g); err != nil {
			b.Fatal(err)
		}
	}
}
